#include "graph/homogenizer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "core/error.hpp"
#include "graph/snap_io.hpp"
#include "test_util.hpp"

namespace epgs {
namespace {

namespace fs = std::filesystem;

/// Sort edges for order-insensitive comparison.
std::vector<Edge> canonical(std::vector<Edge> edges) {
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.src != b.src) return a.src < b.src;
    if (a.dst != b.dst) return a.dst < b.dst;
    return a.w < b.w;
  });
  return edges;
}

class HomogenizerRoundTrip
    : public ::testing::TestWithParam<std::tuple<GraphFormat, bool>> {
 protected:
  static EdgeList input(bool weighted) {
    auto el = test::line_graph(9, weighted);
    // A vertex with no edges at the top of the id range, to catch formats
    // that only infer the vertex set from edge endpoints.
    el.num_vertices = 11;
    return el;
  }

  static EdgeList round_trip(GraphFormat fmt, const EdgeList& el,
                             const fs::path& dir) {
    const auto ds = homogenize(el, "rt", dir);
    const auto& p = ds.path(fmt);
    switch (fmt) {
      case GraphFormat::kSnapText: return read_snap_file(p);
      case GraphFormat::kGraph500Bin: return read_graph500_bin(p);
      case GraphFormat::kGapSg: return read_gap_sg(p);
      case GraphFormat::kGraphMatMtx: return read_graphmat_mtx(p);
      case GraphFormat::kGraphBigCsv: return read_graphbig_csv(p);
      case GraphFormat::kPowerGraphTsv: return read_powergraph_tsv(p);
      case GraphFormat::kLigraAdj: return read_ligra_adj(p);
    }
    throw std::logic_error("unreachable");
  }
};

TEST_P(HomogenizerRoundTrip, EdgesSurviveAsMultiset) {
  const auto [fmt, weighted] = GetParam();
  const auto dir = fs::temp_directory_path() /
                   ("epgs_homog_" + std::string(format_name(fmt)) +
                    (weighted ? "_w" : "_u"));
  const auto el = input(weighted);
  const auto back = round_trip(fmt, el, dir);

  EXPECT_EQ(back.num_vertices, el.num_vertices)
      << "format " << format_name(fmt);
  EXPECT_EQ(back.weighted, el.weighted);
  EXPECT_EQ(canonical(back.edges), canonical(el.edges));
  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(
    AllFormats, HomogenizerRoundTrip,
    ::testing::Combine(
        ::testing::Values(GraphFormat::kSnapText, GraphFormat::kGraph500Bin,
                          GraphFormat::kGapSg, GraphFormat::kGraphMatMtx,
                          GraphFormat::kGraphBigCsv,
                          GraphFormat::kPowerGraphTsv,
                          GraphFormat::kLigraAdj),
        ::testing::Bool()),
    [](const auto& info) {
      std::string name(format_name(std::get<0>(info.param)));
      std::replace(name.begin(), name.end(), '-', '_');
      return name + "_" +
             (std::get<1>(info.param) ? "weighted" : "unweighted");
    });

TEST(Homogenizer, ProducesAllSevenFormats) {
  const auto dir = fs::temp_directory_path() / "epgs_homog_all";
  const auto ds = homogenize(test::two_triangles(), "tri", dir);
  EXPECT_EQ(ds.files.size(), 7u);
  for (const auto& [fmt, path] : ds.files) {
    EXPECT_TRUE(fs::exists(path)) << format_name(fmt);
  }
  fs::remove_all(dir);
}

TEST(Homogenizer, PathThrowsForMissingFormat) {
  HomogenizedDataset ds;
  ds.name = "x";
  EXPECT_THROW(ds.path(GraphFormat::kGapSg), EpgsError);
}

TEST(Homogenizer, FormatNamesDistinct) {
  const GraphFormat all[] = {
      GraphFormat::kSnapText,    GraphFormat::kGraph500Bin,
      GraphFormat::kGapSg,       GraphFormat::kGraphMatMtx,
      GraphFormat::kGraphBigCsv, GraphFormat::kPowerGraphTsv,
      GraphFormat::kLigraAdj};
  std::vector<std::string_view> names;
  for (const auto f : all) names.push_back(format_name(f));
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(Homogenizer, GapSgNormalisesToSortedCsrOrder) {
  // The .sg format serialises a CSR, so the round-trip is sorted by
  // (src, dst) — a permutation of the input, which canonical() hides; the
  // byte-level guarantee is row-major sortedness.
  EdgeList el;
  el.num_vertices = 3;
  el.edges = {Edge{2, 0, 1.0f}, Edge{0, 2, 1.0f}, Edge{0, 1, 1.0f}};
  const auto dir = fs::temp_directory_path() / "epgs_homog_sg";
  fs::create_directories(dir);
  write_gap_sg(dir / "g.sg", el);
  const auto back = read_gap_sg(dir / "g.sg");
  ASSERT_EQ(back.edges.size(), 3u);
  EXPECT_TRUE(std::is_sorted(back.edges.begin(), back.edges.end(),
                             [](const Edge& a, const Edge& b) {
                               return a.src != b.src ? a.src < b.src
                                                     : a.dst < b.dst;
                             }));
  fs::remove_all(dir);
}

TEST(Homogenizer, GraphMatMtxIsOneIndexed) {
  EdgeList el;
  el.num_vertices = 2;
  el.edges = {Edge{0, 1, 1.0f}};
  const auto dir = fs::temp_directory_path() / "epgs_homog_mtx";
  fs::create_directories(dir);
  write_graphmat_mtx(dir / "g.mtx", el);

  std::ifstream in(dir / "g.mtx");
  std::string header, sizes, edge;
  std::getline(in, header);
  std::getline(in, sizes);
  std::getline(in, edge);
  EXPECT_NE(header.find("MatrixMarket"), std::string::npos);
  EXPECT_EQ(sizes, "2 2 1");
  EXPECT_EQ(edge, "1 2");
  fs::remove_all(dir);
}

/// Malformed numerics must raise a typed ParseError, not silently default
/// the field (the old sscanf/istringstream readers did the latter).
class ReaderRejection : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "epgs_homog_reject";
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path write(const std::string& name, const std::string& text) {
    const auto p = dir_ / name;
    std::ofstream(p) << text;
    return p;
  }

  fs::path dir_;
};

TEST_F(ReaderRejection, MtxBadIndexAndWeight) {
  const auto bad_id = write("a.mtx",
                            "%%MatrixMarket matrix coordinate pattern "
                            "general\n2 2 1\n1 two\n");
  EXPECT_THROW(read_graphmat_mtx(bad_id), ParseError);
  const auto bad_w = write("b.mtx",
                           "%%MatrixMarket matrix coordinate real "
                           "general\n2 2 1\n1 2 heavy\n");
  EXPECT_THROW(read_graphmat_mtx(bad_w), ParseError);
}

TEST_F(ReaderRejection, PowerGraphTsvBadFields) {
  EXPECT_THROW(read_powergraph_tsv(write("a.tsv", "1\tx\n")), ParseError);
  EXPECT_THROW(read_powergraph_tsv(write("b.tsv", "1\t2\theavy\n")),
               ParseError);
  EXPECT_THROW(read_powergraph_tsv(write("c.tsv", "#nv\tmany\n")),
               ParseError);
}

TEST_F(ReaderRejection, GraphBigCsvBadFieldsAndTrailingJunk) {
  const auto mk = [&](const std::string& edge_csv) {
    const auto d = dir_ / "gb";
    fs::create_directories(d);
    std::ofstream(d / "vertex.csv") << "id\n0\n1\n";
    std::ofstream(d / "edge.csv") << edge_csv;
    return d;
  };
  EXPECT_THROW(read_graphbig_csv(mk("src,dst\n0,one\n")), ParseError);
  EXPECT_THROW(read_graphbig_csv(mk("src,dst,weight\n0,1,w\n")),
               ParseError);
  EXPECT_THROW(read_graphbig_csv(mk("src,dst\n0,1,junk\n")), ParseError);
}

TEST_F(ReaderRejection, LigraAdjBadCountAndTruncation) {
  EXPECT_THROW(read_ligra_adj(write("a.adj", "AdjacencyGraph\nx\n1\n")),
               ParseError);
  // Declares 2 vertices / 1 edge but the token stream ends early.
  EXPECT_THROW(read_ligra_adj(write("b.adj", "AdjacencyGraph\n2\n1\n0\n")),
               ParseError);
}

TEST_F(ReaderRejection, SnapBadWeight) {
  EXPECT_THROW(read_snap_file(write("a.snap", "0\t1\theavy\n")), ParseError);
  EXPECT_THROW(read_snap_file(write("b.snap", "0\n")), ParseError);
}

TEST_F(ReaderRejection, BinaryTruncationDetected) {
  EdgeList el;
  el.num_vertices = 3;
  el.edges = {Edge{0, 1, 1.0f}, Edge{1, 2, 1.0f}};
  const auto g500 = dir_ / "g.g500";
  write_graph500_bin(g500, el);
  fs::resize_file(g500, fs::file_size(g500) - 3);
  EXPECT_THROW(read_graph500_bin(g500), EpgsError);

  const auto sg = dir_ / "g.sg";
  write_gap_sg(sg, el);
  fs::resize_file(sg, fs::file_size(sg) - 3);
  EXPECT_THROW(read_gap_sg(sg), EpgsError);
}

}  // namespace
}  // namespace epgs
