// Memory-locality layer: NUMA-aware allocation, first-touch fills,
// deterministic reductions, and thread pinning (core/numa_alloc.hpp,
// core/thread_pinning.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <utility>
#include <vector>

#include "core/numa_alloc.hpp"
#include "core/parallel.hpp"
#include "core/thread_pinning.hpp"
#include "core/types.hpp"

namespace epgs {
namespace {

TEST(NumaAlloc, SmallAndLargeBlocksRoundTrip) {
  // Below the mmap threshold: aligned operator new.
  void* small = numa_alloc_bytes(4096);
  ASSERT_NE(small, nullptr);
  std::memset(small, 0xab, 4096);
  numa_free_bytes(small, 4096);

  // Above the threshold: anonymous mmap, zero-filled by the kernel.
  const std::size_t big = (std::size_t{1} << 21) + 4096;
  auto* p = static_cast<unsigned char*>(numa_alloc_bytes(big));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p[0], 0);
  EXPECT_EQ(p[big - 1], 0);
  p[0] = 1;
  p[big - 1] = 2;
  numa_free_bytes(p, big);
}

TEST(NumaAlloc, HugePageRequestsAreCountedNeverFatal) {
  const bool saved = huge_pages_enabled();
  set_huge_pages(true);
  const HugePageStatus before = huge_page_status();
  // >= 2 MiB triggers a MADV_HUGEPAGE request (where the platform
  // provides it); denial must only bump the failure counter.
  void* p = numa_alloc_bytes(std::size_t{1} << 22);
  ASSERT_NE(p, nullptr);
  numa_free_bytes(p, std::size_t{1} << 22);
  const HugePageStatus after = huge_page_status();
  EXPECT_GE(after.requests, before.requests);
  EXPECT_GE(after.failures, before.failures);
  EXPECT_LE(after.failures, after.requests);
  EXPECT_FALSE(describe(after).empty());
  set_huge_pages(saved);
}

TEST(FirstTouch, VectorResizeDoesNotTouchButWorksLikeVector) {
  FirstTouchVector<double> v;
  v.resize(1000);  // default-init: no pages touched here
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i);
  EXPECT_EQ(v[999], 999.0);

  // Value-construction still zeroes, matching std::vector semantics.
  FirstTouchVector<int> z(64, 7);
  EXPECT_EQ(z[0], 7);
  EXPECT_EQ(z[63], 7);

  // Copy/compare against a plain vector.
  std::vector<double> plain(v.begin(), v.end());
  EXPECT_TRUE(std::equal(v.begin(), v.end(), plain.begin()));
}

TEST(FirstTouch, FillPlacesEveryElementAtEveryThreadCount) {
  for (const int t : {1, 2, 4, 8}) {
    ThreadScope scope(t);
    FirstTouchVector<std::uint32_t> v;
    v.resize(100000);
    first_touch_fill_with(v.data(), v.size(),
                          [](std::size_t i) {
                            return static_cast<std::uint32_t>(i * 3);
                          });
    for (std::size_t i = 0; i < v.size(); i += 997) {
      ASSERT_EQ(v[i], static_cast<std::uint32_t>(i * 3)) << "threads " << t;
    }
  }
}

TEST(NumaArrayTest, FillAndFillWithCoverAtomics) {
  ThreadScope scope(4);
  NumaArray<std::atomic<vid_t>> parent(1000, kNoVertex);
  EXPECT_EQ(parent.size(), 1000u);
  for (std::size_t i = 0; i < parent.size(); ++i) {
    ASSERT_EQ(parent[i].load(std::memory_order_relaxed), kNoVertex);
  }

  NumaArray<std::atomic<vid_t>> comp(1000);
  comp.fill_with([](std::size_t i) { return static_cast<vid_t>(i); });
  for (std::size_t i = 0; i < comp.size(); ++i) {
    ASSERT_EQ(comp[i].load(std::memory_order_relaxed),
              static_cast<vid_t>(i));
  }

  // Move transfers ownership; moved-from is empty.
  NumaArray<std::atomic<vid_t>> moved = std::move(comp);
  EXPECT_EQ(moved.size(), 1000u);
  EXPECT_EQ(comp.size(), 0u);  // NOLINT(bugprone-use-after-move)
}

// The deterministic block reduction must return the *same bits* at every
// thread count — that is its whole contract (core/parallel.hpp); the
// PageRank kernels rely on it for thread-count-independent ranks.
TEST(DeterministicBlockSum, BitIdenticalAcrossThreadCounts) {
  const std::size_t n = 100003;  // deliberately not a block multiple
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Wide dynamic range makes the sum order-sensitive, so a
    // nondeterministic reduction would be caught.
    xs[i] = (i % 7 == 0 ? 1e12 : 1e-3) / static_cast<double>(i + 1);
  }
  const auto f = [&](std::size_t i) { return xs[i]; };

  double baseline = 0.0;
  {
    ThreadScope scope(1);
    baseline = deterministic_block_sum<double>(n, f);
  }
  for (const int t : {2, 4, 8}) {
    ThreadScope scope(t);
    const double s = deterministic_block_sum<double>(n, f);
    ASSERT_EQ(s, baseline) << "threads " << t;
  }
}

TEST(DeterministicBlockSum, MatchesSerialBlockOrderFold) {
  const std::size_t n = 10000;
  const auto f = [](std::size_t i) {
    return 1.0 / static_cast<double>(i + 1);
  };
  // Reference: fold fixed-size blocks left-to-right, exactly the
  // documented combination order.
  constexpr std::size_t kBlock = 4096;
  double expect = 0.0;
  for (std::size_t lo = 0; lo < n; lo += kBlock) {
    const std::size_t hi = std::min(n, lo + kBlock);
    double partial = 0.0;
    for (std::size_t i = lo; i < hi; ++i) partial += f(i);
    expect += partial;
  }
  ThreadScope scope(4);
  EXPECT_EQ(deterministic_block_sum<double>(n, f), expect);
}

// Pinning must apply (or be refused by the sandbox) without ever
// failing the run, and clear_thread_pinning must restore the mask.
TEST(ThreadPinning, AppliesAndClearsGracefully) {
  const bool saved = pinning_enabled();
  set_pinning(false);
  const PinReport off = apply_thread_pinning();
  EXPECT_FALSE(off.requested);
  EXPECT_EQ(off.pinned, 0);

  set_pinning(true);
  {
    ThreadScope scope(4);
    const PinReport on = apply_thread_pinning();
    EXPECT_TRUE(on.requested);
    EXPECT_GT(on.threads, 0);
    // Every team thread either bound or was refused — nothing dropped.
    EXPECT_EQ(on.pinned + on.failed, on.threads);
    EXPECT_FALSE(describe(on).empty());
  }
  clear_thread_pinning();
  set_pinning(saved);
}

}  // namespace
}  // namespace epgs
