// GAS engine unit tests: superstep semantics, mirror synchronisation,
// scatter seeding, and counters — independent of any full algorithm.
#include "systems/powergraph/gas_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.hpp"

namespace epgs::systems::powergraph_detail {
namespace {

/// Minimal program: propagate minimum label over in-edges.
struct MinProgram {
  struct VData {
    vid_t label = kNoVertex;
  };
  using Gather = vid_t;
  static constexpr bool gather_both = false;
  static constexpr bool scatter_both = false;

  [[nodiscard]] Gather gather_init() const { return kNoVertex; }
  void gather(const VData& nbr, weight_t, Gather& acc) const {
    acc = std::min(acc, nbr.label);
  }
  void combine(Gather& into, const Gather& partial) const {
    into = std::min(into, partial);
  }
  bool apply(VData& v, const Gather& acc, bool any) const {
    if (any && acc < v.label) {
      v.label = acc;
      return true;
    }
    return false;
  }
};

TEST(GasEngine, SuperstepPropagatesOneHop) {
  // Directed chain 0 -> 1 -> 2 -> 3.
  EdgeList el;
  el.num_vertices = 4;
  el.edges = {Edge{0, 1, 1.0f}, Edge{1, 2, 1.0f}, Edge{2, 3, 1.0f}};
  const auto vc = VertexCut::build(el, 2);
  GasEngine<MinProgram> engine(vc, MinProgram{});
  for (vid_t v = 0; v < 4; ++v) engine.data()[v].label = v + 10;

  // One superstep with everyone active: each vertex pulls from its
  // in-neighbour's *pre-superstep* state (synchronous semantics).
  const auto next = engine.superstep(engine.all_vertices());
  EXPECT_EQ(engine.data()[1].label, 10u);
  EXPECT_EQ(engine.data()[2].label, 11u);  // old label of 1, not 10
  EXPECT_EQ(engine.data()[3].label, 12u);

  // Changed vertices signalled their out-neighbours.
  EXPECT_EQ(next, (std::vector<vid_t>{2, 3}));
}

TEST(GasEngine, RunReachesFixpoint) {
  const auto el = test::cycle_graph(8);
  const auto vc = VertexCut::build(el, 3);
  GasEngine<MinProgram> engine(vc, MinProgram{});
  for (vid_t v = 0; v < 8; ++v) engine.data()[v].label = v;

  const int iters = engine.run(engine.all_vertices(), 100);
  for (vid_t v = 0; v < 8; ++v) {
    EXPECT_EQ(engine.data()[v].label, 0u);
  }
  // Min label needs ~diameter supersteps plus the final quiet round.
  EXPECT_GE(iters, 4);
  EXPECT_LE(iters, 10);
}

TEST(GasEngine, MaxIterationsCapsRun) {
  const auto el = test::line_graph(64);
  const auto vc = VertexCut::build(el, 2);
  GasEngine<MinProgram> engine(vc, MinProgram{});
  for (vid_t v = 0; v < 64; ++v) engine.data()[v].label = v;
  EXPECT_EQ(engine.run(engine.all_vertices(), 3), 3);
  // After 3 synchronous rounds, labels moved at most 3 hops.
  EXPECT_EQ(engine.data()[10].label, 7u);
}

TEST(GasEngine, ScatterFromSeedsNeighbors) {
  EdgeList el;
  el.num_vertices = 5;
  el.edges = {Edge{0, 1, 1.0f}, Edge{0, 2, 1.0f}, Edge{3, 4, 1.0f}};
  const auto vc = VertexCut::build(el, 2);
  GasEngine<MinProgram> engine(vc, MinProgram{});
  const auto seeded = engine.scatter_from({0});
  EXPECT_EQ(seeded, (std::vector<vid_t>{1, 2}));
  EXPECT_TRUE(engine.scatter_from({4}).empty()) << "4 has no out-edges";
}

TEST(GasEngine, CountersAccumulate) {
  const auto el = test::cycle_graph(16);
  const auto vc = VertexCut::build(el, 4);
  GasEngine<MinProgram> engine(vc, MinProgram{});
  for (vid_t v = 0; v < 16; ++v) engine.data()[v].label = v;
  engine.run(engine.all_vertices(), 100);
  const auto& c = engine.counters();
  EXPECT_GT(c.supersteps, 0);
  EXPECT_GT(c.gather_edges, 0u);
  EXPECT_GT(c.scatter_signals, 0u);
  EXPECT_GT(c.sync_copies, 0u)
      << "mirror broadcast must run every superstep";
  // Sync volume = replicas x supersteps.
  std::uint64_t replicas = 0;
  for (vid_t v = 0; v < 16; ++v) replicas += vc.replicas_of(v).size();
  EXPECT_EQ(c.sync_copies,
            replicas * static_cast<std::uint64_t>(c.supersteps));
}

TEST(GasEngineAsync, ConvergesToSameFixpointAsSync) {
  const auto el = test::cycle_graph(16);
  const auto vc = VertexCut::build(el, 3);

  GasEngine<MinProgram> sync_engine(vc, MinProgram{});
  GasEngine<MinProgram> async_engine(vc, MinProgram{});
  for (vid_t v = 0; v < 16; ++v) {
    sync_engine.data()[v].label = v;
    async_engine.data()[v].label = v;
  }
  sync_engine.run(sync_engine.all_vertices(), 1000);
  const auto processed =
      async_engine.run_async(async_engine.all_vertices(), 1'000'000);

  EXPECT_GT(processed, 0u);
  for (vid_t v = 0; v < 16; ++v) {
    EXPECT_EQ(async_engine.data()[v].label, sync_engine.data()[v].label)
        << v;
  }
  // Async never pays for mirror broadcasts.
  EXPECT_EQ(async_engine.counters().sync_copies, 0u);
  EXPECT_GT(sync_engine.counters().sync_copies, 0u);
}

TEST(GasEngineAsync, ActivationCapRespected) {
  const auto el = test::line_graph(100);
  const auto vc = VertexCut::build(el, 2);
  GasEngine<MinProgram> engine(vc, MinProgram{});
  for (vid_t v = 0; v < 100; ++v) engine.data()[v].label = v;
  EXPECT_EQ(engine.run_async(engine.all_vertices(), 10), 10u);
}

TEST(GasEngineAsync, OftenNeedsFewerEdgeOpsThanSync) {
  // On a long path, async propagation (FIFO from the minimum) touches
  // each edge a bounded number of times; the sync engine re-gathers the
  // full frontier every superstep. This is the classic async win.
  const auto el = test::line_graph(128);
  const auto vc = VertexCut::build(el, 4);

  GasEngine<MinProgram> sync_engine(vc, MinProgram{});
  GasEngine<MinProgram> async_engine(vc, MinProgram{});
  for (vid_t v = 0; v < 128; ++v) {
    sync_engine.data()[v].label = v;
    async_engine.data()[v].label = v;
  }
  sync_engine.run(sync_engine.all_vertices(), 10000);
  async_engine.run_async(async_engine.all_vertices(), ~0ull);
  EXPECT_LT(async_engine.counters().gather_edges,
            sync_engine.counters().gather_edges);
}

TEST(GasEngine, IsolatedVerticesHarmless) {
  EdgeList el;
  el.num_vertices = 4;
  el.edges = {Edge{0, 1, 1.0f}};
  const auto vc = VertexCut::build(el, 2);
  GasEngine<MinProgram> engine(vc, MinProgram{});
  for (vid_t v = 0; v < 4; ++v) engine.data()[v].label = v;
  engine.run(engine.all_vertices(), 10);
  EXPECT_EQ(engine.data()[0].label, 0u);
  EXPECT_EQ(engine.data()[1].label, 0u);
  EXPECT_EQ(engine.data()[2].label, 2u);  // isolated: untouched
  EXPECT_EQ(engine.data()[3].label, 3u);
}

}  // namespace
}  // namespace epgs::systems::powergraph_detail
