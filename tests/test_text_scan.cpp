// The shared from_chars tokenizer behind every text-format reader.
#include "core/text_scan.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace epgs::text {
namespace {

TEST(LineScanner, SplitsLinesAndCountsFromOne) {
  LineScanner lines("a\nb\n\nc");
  std::string_view line;
  ASSERT_TRUE(lines.next(line));
  EXPECT_EQ(line, "a");
  EXPECT_EQ(lines.line_no(), 1u);
  ASSERT_TRUE(lines.next(line));
  EXPECT_EQ(line, "b");
  ASSERT_TRUE(lines.next(line));
  EXPECT_EQ(line, "");
  ASSERT_TRUE(lines.next(line));
  EXPECT_EQ(line, "c");  // no trailing newline
  EXPECT_EQ(lines.line_no(), 4u);
  EXPECT_FALSE(lines.next(line));
}

TEST(LineScanner, EmptyInputYieldsNoLines) {
  LineScanner lines("");
  std::string_view line;
  EXPECT_FALSE(lines.next(line));
}

TEST(NextToken, SkipsWhitespaceIncludingCarriageReturn) {
  std::string_view line = "  12\t34 56\r";
  EXPECT_EQ(next_token(line), "12");
  EXPECT_EQ(next_token(line), "34");
  EXPECT_EQ(next_token(line), "56");
  EXPECT_EQ(next_token(line), "");  // exhausted
}

TEST(NextField, SplitsOnDelimiterKeepingEmptyFields) {
  std::string_view line = "a,,c";
  EXPECT_EQ(next_field(line, ','), "a");
  EXPECT_EQ(next_field(line, ','), "");
  EXPECT_EQ(next_field(line, ','), "c");
  EXPECT_TRUE(line.empty());
}

TEST(NextField, StripsTrailingCarriageReturn) {
  std::string_view line = "1,2\r";
  EXPECT_EQ(next_field(line, ','), "1");
  EXPECT_EQ(next_field(line, ','), "2");
}

TEST(ParseU64, AcceptsFullTokenOnly) {
  EXPECT_EQ(parse_u64("42", "t", "x", 1), 42u);
  EXPECT_THROW((void)parse_u64("", "t", "x", 1), ParseError);
  EXPECT_THROW((void)parse_u64("4x2", "t", "x", 1), ParseError);
  EXPECT_THROW((void)parse_u64("-1", "t", "x", 1), ParseError);
  EXPECT_THROW((void)parse_u64("3.5", "t", "x", 1), ParseError);
}

TEST(ParseDouble, AcceptsWriterForms) {
  EXPECT_DOUBLE_EQ(parse_double("2.5", "t", "w", 1), 2.5);
  EXPECT_DOUBLE_EQ(parse_double("1e-3", "t", "w", 1), 1e-3);
  EXPECT_DOUBLE_EQ(parse_double("-4", "t", "w", 1), -4.0);
  EXPECT_THROW((void)parse_double("fast", "t", "w", 1), ParseError);
  EXPECT_THROW((void)parse_double("1.2.3", "t", "w", 1), ParseError);
}

TEST(ParseVid, EnforcesThirtyTwoBitRange) {
  EXPECT_EQ(parse_vid("7", "t", 1), 7u);
  EXPECT_THROW((void)parse_vid("4294967295", "t", 1), EpgsError);
  EXPECT_THROW((void)parse_vid("nine", "t", 1), ParseError);
}

TEST(Fail, MessageNamesContextTokenAndLine) {
  try {
    fail("mtx", "weight", "abc", 17);
    FAIL() << "fail() must throw";
  } catch (const ParseError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("mtx"), std::string::npos);
    EXPECT_NE(msg.find("weight"), std::string::npos);
    EXPECT_NE(msg.find("'abc'"), std::string::npos);
    EXPECT_NE(msg.find("17"), std::string::npos);
  }
}

}  // namespace
}  // namespace epgs::text
