#include "harness/tuning.hpp"

#include "harness/experiment.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/error.hpp"
#include "gen/kronecker.hpp"
#include "graph/transforms.hpp"
#include "test_util.hpp"

namespace epgs::harness {
namespace {

EdgeList tuning_graph() {
  gen::KroneckerParams p;
  p.scale = 9;
  p.edgefactor = 8;
  return dedupe(symmetrize(gen::kronecker(p)));
}

TEST(TuneBfs, BestComesFromGridAndMatchesMeasurements) {
  const auto graph = tuning_graph();
  const auto roots = select_roots(graph, 3, 11);
  const auto grid = default_bfs_grid();
  const auto result = tune_bfs(graph, roots, grid);

  ASSERT_EQ(result.mean_seconds.size(), grid.size());
  const auto min_it = std::min_element(result.mean_seconds.begin(),
                                       result.mean_seconds.end());
  EXPECT_DOUBLE_EQ(result.best_mean_seconds, *min_it);
  const auto idx =
      static_cast<std::size_t>(min_it - result.mean_seconds.begin());
  EXPECT_DOUBLE_EQ(result.best.alpha, grid[idx].alpha);
  EXPECT_DOUBLE_EQ(result.best.beta, grid[idx].beta);
  for (const double s : result.mean_seconds) EXPECT_GT(s, 0.0);
}

TEST(TuneBfs, SingleCandidateGrid) {
  const auto graph = test::cycle_graph(64);
  const auto roots = select_roots(graph, 2, 3);
  const auto result = tune_bfs(graph, roots, {{7.0, 9.0}});
  EXPECT_DOUBLE_EQ(result.best.alpha, 7.0);
  EXPECT_DOUBLE_EQ(result.best.beta, 9.0);
  EXPECT_EQ(result.mean_seconds.size(), 1u);
}

TEST(TuneBfs, RejectsEmptyInputs) {
  const auto graph = test::cycle_graph(8);
  EXPECT_THROW(tune_bfs(graph, {}, default_bfs_grid()), EpgsError);
  EXPECT_THROW(tune_bfs(graph, {0}, {}), EpgsError);
}

TEST(TuneDelta, BestComesFromGrid) {
  const auto graph = with_random_weights(tuning_graph(), 3, 63);
  const auto roots = select_roots(graph, 3, 11);
  const auto deltas = default_delta_grid();
  const auto result = tune_delta(graph, roots, deltas);

  ASSERT_EQ(result.mean_seconds.size(), deltas.size());
  EXPECT_NE(std::find(deltas.begin(), deltas.end(), result.best_delta),
            deltas.end());
  EXPECT_DOUBLE_EQ(
      result.best_mean_seconds,
      *std::min_element(result.mean_seconds.begin(),
                        result.mean_seconds.end()));
}

TEST(TuneDelta, RequiresWeightedGraph) {
  const auto graph = test::cycle_graph(16);  // unweighted
  EXPECT_THROW(tune_delta(graph, {0}), EpgsError);
}

TEST(DefaultGrids, BracketPaperDefaults) {
  // The grids must contain GAP's documented defaults so "tuned" can
  // never be worse than "untuned" in expectation.
  bool has_default = false;
  for (const auto& c : default_bfs_grid()) {
    has_default |= c.alpha == 15.0 && c.beta == 18.0;
  }
  EXPECT_TRUE(has_default);
  const auto deltas = default_delta_grid();
  EXPECT_NE(std::find(deltas.begin(), deltas.end(), 2.0f), deltas.end());
}

}  // namespace
}  // namespace epgs::harness
