#include "core/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace epgs {
namespace {

TEST(Csv, EscapePlainFieldUnchanged) {
  EXPECT_EQ(CsvWriter::escape("hello"), "hello");
  EXPECT_EQ(CsvWriter::escape(""), "");
}

TEST(Csv, EscapeQuotesCommasNewlines) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line1\nline2"), "\"line1\nline2\"");
}

TEST(Csv, WriteRow) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"a", "b,c", "d"});
  EXPECT_EQ(os.str(), "a,\"b,c\",d\n");
}

TEST(Csv, ParseSimple) {
  const auto rows = parse_csv("a,b,c\n1,2,3\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (CsvRow{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (CsvRow{"1", "2", "3"}));
}

TEST(Csv, ParseQuotedFields) {
  const auto rows = parse_csv("\"a,b\",\"c\"\"d\",\"e\nf\"\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (CsvRow{"a,b", "c\"d", "e\nf"}));
}

TEST(Csv, ParseMissingTrailingNewline) {
  const auto rows = parse_csv("x,y");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (CsvRow{"x", "y"}));
}

TEST(Csv, ParseEmptyFields) {
  const auto rows = parse_csv(",\na,,b\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (CsvRow{"", ""}));
  EXPECT_EQ(rows[1], (CsvRow{"a", "", "b"}));
}

TEST(Csv, ParseToleratesCrlf) {
  const auto rows = parse_csv("a,b\r\nc,d\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (CsvRow{"c", "d"}));
}

TEST(Csv, ParseEmptyDocument) { EXPECT_TRUE(parse_csv("").empty()); }

TEST(Csv, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse_csv("\"abc"), std::runtime_error);
}

TEST(Csv, RoundTrip) {
  const std::vector<CsvRow> rows = {
      {"dataset", "system", "seconds"},
      {"kron, s22", "Graph\"Mat\"", "0.149"},
      {"multi\nline", "", "1.0"},
  };
  EXPECT_EQ(parse_csv(to_csv(rows)), rows);
}

}  // namespace
}  // namespace epgs
