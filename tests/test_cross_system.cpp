// Cross-system agreement: every system under test must produce results
// equivalent to the serial reference oracles on a battery of graphs —
// the property that makes the paper's runtime comparison meaningful at
// all (same problem, same answer, different machinery).
#include <gtest/gtest.h>

#include <cmath>

#include "core/parallel.hpp"
#include "core/thread_pinning.hpp"
#include "gen/datasets.hpp"
#include "gen/kronecker.hpp"
#include "graph/csr.hpp"
#include "graph/transforms.hpp"
#include "systems/common/reference.hpp"
#include "systems/common/registry.hpp"
#include "systems/common/validation.hpp"
#include "systems/gap/gap_system.hpp"
#include "systems/graphmat/graphmat_system.hpp"
#include "systems/powergraph/powergraph_system.hpp"
#include "test_util.hpp"

namespace epgs {
namespace {

struct GraphCase {
  std::string name;
  EdgeList edges;
};

// ctest runs every parameterized case in its own process, so building
// the whole battery eagerly would regenerate all nine graphs per test.
// Keep (name, generator) specs and materialise only the requested case.
struct GraphCaseSpec {
  const char* name;
  EdgeList (*make)();
};

const std::vector<GraphCaseSpec>& battery_specs() {
  static const std::vector<GraphCaseSpec> specs = {
      {"two_triangles", [] { return test::two_triangles(); }},
      {"line16w", [] { return test::line_graph(16, /*weighted=*/true); }},
      {"star12", [] { return test::star_graph(12); }},
      {"cycle9", [] { return test::cycle_graph(9); }},
      {"directed_pr", [] { return test::pagerank_graph(); }},
      {"kron_s8",
       [] {
         gen::KroneckerParams p;
         p.scale = 8;
         p.edgefactor = 8;
         return with_random_weights(dedupe(symmetrize(gen::kronecker(p))),
                                    7, 15);
       }},
      {"loops_dupes",
       [] {
         // Self loops and parallel edges: systems must agree on the
         // messy input too (the raw Kronecker stream contains both).
         EdgeList el;
         el.num_vertices = 6;
         el.weighted = true;
         el.edges = {Edge{0, 0, 3.0f}, Edge{0, 1, 2.0f}, Edge{1, 0, 2.0f},
                     Edge{0, 1, 5.0f}, Edge{1, 0, 5.0f}, Edge{1, 2, 1.0f},
                     Edge{2, 1, 1.0f}, Edge{2, 2, 1.0f}, Edge{3, 4, 4.0f},
                     Edge{4, 3, 4.0f}, Edge{3, 4, 4.0f}, Edge{4, 3, 4.0f}};
         return el;
       }},
      {"patents_like",
       [] {
         gen::PatentsLikeParams p;
         p.fraction = 0.0004;  // ~1.5k vertices, directed
         return gen::patents_like(p);
       }},
      {"dota_like",
       [] {
         gen::DotaLikeParams p;
         p.fraction = 0.004;  // ~250 vertices, dense weighted
         return gen::dota_like(p);
       }},
  };
  return specs;
}

class CrossSystem
    : public ::testing::TestWithParam<std::tuple<std::string, std::size_t>> {
 protected:
  void SetUp() override {
    const auto& [system_name, case_index] = GetParam();
    const auto& spec = battery_specs()[case_index];
    graph_ = GraphCase{spec.name, spec.make()};
    sys_ = make_system(system_name);
    sys_->set_edges(graph_.edges);
    sys_->build();
    out_ = CSRGraph::from_edges(graph_.edges);
    in_ = CSRGraph::from_edges(graph_.edges, true);
  }

  vid_t pick_root() const {
    // Any vertex with an out-edge, preferring a high-degree one.
    vid_t best = 0;
    for (vid_t v = 0; v < out_.num_vertices(); ++v) {
      if (out_.degree(v) > out_.degree(best)) best = v;
    }
    return best;
  }

  GraphCase graph_{};
  std::unique_ptr<System> sys_;
  CSRGraph out_, in_;
};

TEST_P(CrossSystem, BfsProducesValidShortestTree) {
  if (!sys_->capabilities().bfs) GTEST_SKIP() << "no BFS toolkit";
  const vid_t root = pick_root();
  const auto result = sys_->bfs(root);
  const auto err = validate_bfs(out_, result);
  EXPECT_FALSE(err.has_value()) << sys_->name() << " on " << graph_.name
                                << ": " << err.value_or("");
}

TEST_P(CrossSystem, SsspMatchesDijkstraExactly) {
  if (!sys_->capabilities().sssp) GTEST_SKIP() << "no SSSP toolkit";
  const vid_t root = pick_root();
  const auto result = sys_->sssp(root);
  const auto truth = ref::dijkstra(out_, root);
  ASSERT_EQ(result.dist.size(), truth.size());
  for (vid_t v = 0; v < truth.size(); ++v) {
    EXPECT_EQ(result.dist[v], truth[v])
        << sys_->name() << " on " << graph_.name << " vertex " << v;
  }
}

TEST_P(CrossSystem, PageRankMatchesReference) {
  if (!sys_->capabilities().pagerank) GTEST_SKIP() << "no PageRank";
  PageRankParams params;
  const auto result = sys_->pagerank(params);
  const auto err = validate_pagerank(result, 1e-4);
  EXPECT_FALSE(err.has_value()) << err.value_or("");

  const auto truth = ref::pagerank(out_, in_, params);
  // GraphMat's single-precision ranks and its different stopping
  // criterion warrant a looser tolerance.
  const double rel_tol = sys_->name() == "GraphMat" ? 1e-3 : 1e-6;
  ASSERT_EQ(result.rank.size(), truth.rank.size());
  const double uniform = 1.0 / static_cast<double>(result.rank.size());
  for (std::size_t v = 0; v < truth.rank.size(); ++v) {
    EXPECT_NEAR(result.rank[v], truth.rank[v],
                rel_tol * (uniform + truth.rank[v]))
        << sys_->name() << " on " << graph_.name << " vertex " << v;
  }
}

TEST_P(CrossSystem, CdlpMatchesReference) {
  if (!sys_->capabilities().cdlp) GTEST_SKIP() << "no CDLP";
  const auto result = sys_->cdlp(10);
  const auto truth = ref::cdlp(out_, in_, 10);
  EXPECT_EQ(result.label, truth.label)
      << sys_->name() << " on " << graph_.name;
}

TEST_P(CrossSystem, LccMatchesReference) {
  if (!sys_->capabilities().lcc) GTEST_SKIP() << "no LCC";
  const auto result = sys_->lcc();
  const auto truth = ref::lcc(out_, in_);
  ASSERT_EQ(result.coefficient.size(), truth.coefficient.size());
  for (std::size_t v = 0; v < truth.coefficient.size(); ++v) {
    EXPECT_NEAR(result.coefficient[v], truth.coefficient[v], 1e-12)
        << sys_->name() << " on " << graph_.name << " vertex " << v;
  }
}

TEST_P(CrossSystem, TriangleCountMatchesReference) {
  if (!sys_->capabilities().tc) GTEST_SKIP() << "no TC toolkit";
  const auto result = sys_->tc();
  const auto truth = ref::triangle_count(out_, in_);
  EXPECT_EQ(result.triangles, truth.triangles)
      << sys_->name() << " on " << graph_.name;
}

TEST_P(CrossSystem, BetweennessMatchesBrandes) {
  if (!sys_->capabilities().bc) GTEST_SKIP() << "no BC toolkit";
  const vid_t source = pick_root();
  const auto result = sys_->bc(source);
  const auto truth = ref::brandes_bc(out_, in_, source);
  ASSERT_EQ(result.dependency.size(), truth.dependency.size());
  for (std::size_t v = 0; v < truth.dependency.size(); ++v) {
    EXPECT_NEAR(result.dependency[v], truth.dependency[v],
                1e-9 * (1.0 + truth.dependency[v]))
        << sys_->name() << " on " << graph_.name << " vertex " << v;
  }
}

TEST_P(CrossSystem, WccMatchesReferenceAndValidates) {
  if (!sys_->capabilities().wcc) GTEST_SKIP() << "no WCC";
  const auto result = sys_->wcc();
  const auto truth = ref::wcc(graph_.edges);
  EXPECT_EQ(result.component, truth.component)
      << sys_->name() << " on " << graph_.name;
  EXPECT_FALSE(validate_wcc(graph_.edges, result).has_value());
}

std::vector<std::tuple<std::string, std::size_t>> all_cases() {
  std::vector<std::tuple<std::string, std::size_t>> cases;
  auto names = all_system_names();
  const auto ext = extension_system_names();
  names.insert(names.end(), ext.begin(), ext.end());
  for (const auto sys : names) {
    for (std::size_t g = 0; g < battery_specs().size(); ++g) {
      cases.emplace_back(std::string(sys), g);
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllSystemsAllGraphs, CrossSystem, ::testing::ValuesIn(all_cases()),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" +
             battery_specs()[std::get<1>(info.param)].name;
    });

// Thread-count sweep: the lock-free frontier machinery must produce
// results equivalent to the serial references at every parallelism
// level the paper sweeps (Fig 5/6). BFS parent trees are validated
// structurally (any valid shortest-path tree is accepted), SSSP
// distances and PageRank ranks must match the oracles exactly /
// within tolerance.
class CrossSystemThreads : public ::testing::TestWithParam<int> {};

TEST_P(CrossSystemThreads, BfsSsspPageRankEquivalentAtEveryThreadCount) {
  const int num_threads = GetParam();
  ThreadScope scope(num_threads);

  const auto el = with_random_weights(dedupe(symmetrize([] {
                                       gen::KroneckerParams p;
                                       p.scale = 8;
                                       p.edgefactor = 8;
                                       return gen::kronecker(p);
                                     }())),
                                      3, 12);
  const auto out = CSRGraph::from_edges(el);
  const auto in = CSRGraph::from_edges(el, true);
  const vid_t root = 1;
  const auto bfs_truth = ref::bfs_levels(out, root);
  const auto sssp_truth = ref::dijkstra(out, root);
  PageRankParams pr_params;
  const auto pr_truth = ref::pagerank(out, in, pr_params);

  auto names = all_system_names();
  const auto ext = extension_system_names();
  names.insert(names.end(), ext.begin(), ext.end());
  for (const auto name : names) {
    auto sys = make_system(name);
    sys->set_edges(el);
    sys->build();
    const auto caps = sys->capabilities();
    if (caps.bfs) {
      const auto r = sys->bfs(root);
      const auto err = validate_bfs(out, r);
      EXPECT_FALSE(err.has_value())
          << name << " BFS @" << num_threads << "t: " << err.value_or("");
      EXPECT_EQ(r.levels(), bfs_truth)
          << name << " BFS levels @" << num_threads << "t";
    }
    if (caps.sssp) {
      const auto r = sys->sssp(root);
      ASSERT_EQ(r.dist.size(), sssp_truth.size()) << name;
      for (vid_t v = 0; v < sssp_truth.size(); ++v) {
        ASSERT_EQ(r.dist[v], sssp_truth[v])
            << name << " SSSP @" << num_threads << "t vertex " << v;
      }
    }
    if (caps.pagerank) {
      const auto r = sys->pagerank(pr_params);
      ASSERT_EQ(r.rank.size(), pr_truth.rank.size()) << name;
      const double rel_tol = sys->name() == "GraphMat" ? 1e-3 : 1e-6;
      const double uniform = 1.0 / static_cast<double>(r.rank.size());
      for (std::size_t v = 0; v < pr_truth.rank.size(); ++v) {
        ASSERT_NEAR(r.rank[v], pr_truth.rank[v],
                    rel_tol * (uniform + pr_truth.rank[v]))
            << name << " PageRank @" << num_threads << "t vertex " << v;
      }
    }
  }
}

// The locality-overhaul PageRank kernels (GAP, GraphBIG, GraphMat,
// Ligra) are pure functions of the graph: contributions are
// precomputed, push bins reduce in a fixed chunk order, and the global
// sums use the deterministic block reduction. So the ranks must be
// *bit-identical* across thread counts, not merely within tolerance —
// the single-threaded run of the same kernel is the baseline.
// (PowerGraph sizes its vertex cut from the worker count by design, so
// its ranks are a function of the partition count — covered at a fixed
// partitioning by PrVariants.PowerGraphDeterministicAtFixedPartitions.)
TEST_P(CrossSystemThreads, PageRankBitIdenticalAcrossThreadCounts) {
  const int num_threads = GetParam();
  const auto el = dedupe(symmetrize([] {
    gen::KroneckerParams p;
    p.scale = 8;
    p.edgefactor = 8;
    return gen::kronecker(p);
  }()));
  PageRankParams pr_params;

  auto names = all_system_names();
  const auto ext = extension_system_names();
  names.insert(names.end(), ext.begin(), ext.end());
  std::erase(names, "PowerGraph");  // partition count tracks threads
  for (const auto name : names) {
    std::vector<double> baseline;
    {
      ThreadScope scope(1);
      auto sys = make_system(name);
      if (!sys->capabilities().pagerank) continue;
      sys->set_edges(el);
      sys->build();
      baseline = sys->pagerank(pr_params).rank;
    }
    ThreadScope scope(num_threads);
    auto sys = make_system(name);
    sys->set_edges(el);
    sys->build();
    const auto r = sys->pagerank(pr_params);
    ASSERT_EQ(r.rank.size(), baseline.size()) << name;
    for (std::size_t v = 0; v < baseline.size(); ++v) {
      ASSERT_EQ(r.rank[v], baseline[v])
          << name << " PageRank not deterministic @" << num_threads
          << "t vertex " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadSweep, CrossSystemThreads,
                         ::testing::Values(1, 2, 4, 8),
                         [](const auto& info) {
                           return "threads_" + std::to_string(info.param);
                         });

// GAP's propagation-blocked push kernel bins contributions by fixed
// source chunk and reduces chunks in ascending order, which equals the
// pull kernel's sorted in-neighbor order — the two variants must agree
// bit-for-bit (the header documents this contract).
TEST(PrVariants, GapPullAndBlockedBitIdentical) {
  const auto el = dedupe(symmetrize([] {
    gen::KroneckerParams p;
    p.scale = 9;
    p.edgefactor = 8;
    return gen::kronecker(p);
  }()));
  PageRankParams pr_params;
  ThreadScope scope(4);

  const auto run = [&](systems::GapSystem::PrMode mode) {
    systems::GapSystem::Options opts;
    opts.pr_mode = mode;
    systems::GapSystem sys(opts);
    sys.set_edges(el);
    sys.build();
    return sys.pagerank(pr_params).rank;
  };
  const auto pull = run(systems::GapSystem::PrMode::kPull);
  const auto blocked = run(systems::GapSystem::PrMode::kBlocked);
  const auto legacy = run(systems::GapSystem::PrMode::kLegacy);
  ASSERT_EQ(pull.size(), blocked.size());
  for (std::size_t v = 0; v < pull.size(); ++v) {
    ASSERT_EQ(pull[v], blocked[v]) << "vertex " << v;
  }
  // Legacy reorders the sums, so only tolerance equality holds there.
  for (std::size_t v = 0; v < pull.size(); ++v) {
    ASSERT_NEAR(pull[v], legacy[v], 1e-12 + 1e-9 * legacy[v])
        << "vertex " << v;
  }
}

TEST(PrVariants, GraphMatPullAndBlockedBitIdentical) {
  const auto el = dedupe(symmetrize([] {
    gen::KroneckerParams p;
    p.scale = 9;
    p.edgefactor = 8;
    return gen::kronecker(p);
  }()));
  PageRankParams pr_params;
  ThreadScope scope(4);

  const auto run = [&](systems::GraphMatSystem::PrMode mode) {
    systems::GraphMatSystem::Options opts;
    opts.pr_mode = mode;
    systems::GraphMatSystem sys(opts);
    sys.set_edges(el);
    sys.build();
    return sys.pagerank(pr_params).rank;
  };
  const auto pull = run(systems::GraphMatSystem::PrMode::kPull);
  const auto blocked = run(systems::GraphMatSystem::PrMode::kBlocked);
  ASSERT_EQ(pull.size(), blocked.size());
  for (std::size_t v = 0; v < pull.size(); ++v) {
    ASSERT_EQ(pull[v], blocked[v]) << "vertex " << v;
  }
}

// With the partition count held fixed, PowerGraph's GAS PageRank is
// deterministic too: per-vertex gather order is local edge order,
// master-side combine order is replica order, and both are independent
// of the thread schedule.
TEST(PrVariants, PowerGraphDeterministicAtFixedPartitions) {
  const auto el = dedupe(symmetrize([] {
    gen::KroneckerParams p;
    p.scale = 8;
    p.edgefactor = 8;
    return gen::kronecker(p);
  }()));
  PageRankParams pr_params;

  const auto run = [&](int threads) {
    ThreadScope scope(threads);
    systems::PowerGraphSystem::Options opts;
    opts.num_partitions = 8;
    systems::PowerGraphSystem sys(opts);
    sys.set_edges(el);
    sys.build();
    return sys.pagerank(pr_params).rank;
  };
  const auto baseline = run(1);
  for (const int t : {2, 4, 8}) {
    const auto ranks = run(t);
    ASSERT_EQ(ranks.size(), baseline.size());
    for (std::size_t v = 0; v < baseline.size(); ++v) {
      ASSERT_EQ(ranks[v], baseline[v]) << "threads " << t << " vertex " << v;
    }
  }
}

// A pinned run must give the same answers as an unpinned one (pinning
// only moves threads; kernels are deterministic), and refused binds
// must not turn into failures.
TEST(PrVariants, PinnedRunMatchesUnpinned) {
  const auto el = dedupe(symmetrize([] {
    gen::KroneckerParams p;
    p.scale = 8;
    p.edgefactor = 8;
    return gen::kronecker(p);
  }()));
  PageRankParams pr_params;
  ThreadScope scope(4);

  const auto run = [&] {
    systems::GapSystem sys;
    sys.set_edges(el);
    sys.build();
    return sys.pagerank(pr_params).rank;
  };
  const auto unpinned = run();
  const bool saved = pinning_enabled();
  set_pinning(true);
  apply_thread_pinning();  // graceful even when the sandbox denies it
  const auto pinned = run();
  clear_thread_pinning();
  set_pinning(saved);
  ASSERT_EQ(pinned.size(), unpinned.size());
  for (std::size_t v = 0; v < unpinned.size(); ++v) {
    ASSERT_EQ(pinned[v], unpinned[v]) << "vertex " << v;
  }
}

// Every system must agree with every *other* system on BFS level sets
// (parent trees may differ; levels may not).
TEST(CrossSystemPairwise, BfsLevelSetsAgree) {
  const auto el = dedupe(symmetrize([] {
    gen::KroneckerParams p;
    p.scale = 7;
    return gen::kronecker(p);
  }()));
  const auto csr = CSRGraph::from_edges(el);
  const auto truth = ref::bfs_levels(csr, 1);

  for (const auto name : all_system_names()) {
    auto sys = make_system(name);
    if (!sys->capabilities().bfs) continue;
    sys->set_edges(el);
    sys->build();
    const auto levels = sys->bfs(1).levels();
    EXPECT_EQ(levels, truth) << name;
  }
}

}  // namespace
}  // namespace epgs
