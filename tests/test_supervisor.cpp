// The trial supervisor: watchdog timeouts, crash isolation, retry with
// backoff, and resumable journals — each failure path demonstrated
// deterministically via the fault-injection hooks, never by luck.
#include "harness/supervisor.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "core/error.hpp"
#include "harness/analysis.hpp"
#include "harness/collector.hpp"
#include "harness/runner.hpp"
#include "systems/common/fault_injection.hpp"
#include "systems/common/system.hpp"

namespace epgs::harness {
namespace {

namespace fs = std::filesystem;

class SupervisorDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("epgs_supervisor_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string journal_path() const {
    return (dir_ / "journal.txt").string();
  }

  fs::path dir_;
};

ExperimentConfig tiny_config() {
  ExperimentConfig cfg;
  cfg.graph.kind = GraphSpec::Kind::kKronecker;
  cfg.graph.scale = 6;
  cfg.graph.edgefactor = 8;
  cfg.systems = {"GAP"};
  cfg.algorithms = {Algorithm::kBfs};
  cfg.num_roots = 3;
  cfg.threads = 1;
  return cfg;
}

std::vector<RunRecord> records_with(const ExperimentResult& result,
                                    Outcome outcome) {
  std::vector<RunRecord> out;
  for (const auto& r : result.records) {
    if (r.outcome == outcome) out.push_back(r);
  }
  return out;
}

// --- unit-level supervisor behaviour ------------------------------------

TEST(Cancellation, CheckpointThrowsOnlyAfterCancel) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_NO_THROW(token.checkpoint());
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_THROW(token.checkpoint(), CancelledError);
}

TEST(Supervisor, ClassifiesExceptionTaxonomy) {
  EXPECT_EQ(classify_exception(CancelledError("t")), Outcome::kTimeout);
  EXPECT_EQ(classify_exception(TransientError("t")), Outcome::kTransient);
  EXPECT_EQ(classify_exception(UnsupportedAlgorithm("t")),
            Outcome::kUnsupported);
  EXPECT_EQ(classify_exception(ValidationFailedError("t")),
            Outcome::kValidationFailed);
  EXPECT_EQ(classify_exception(EpgsError("t")), Outcome::kCrash);
  EXPECT_EQ(classify_exception(std::runtime_error("t")), Outcome::kCrash);
}

TEST(Supervisor, BackoffGrowsExponentiallyAndClamps) {
  SupervisorOptions opts;
  opts.backoff_base_seconds = 0.1;
  opts.backoff_max_seconds = 2.0;
  Xoshiro256 rng(7);
  const double d1 = backoff_delay(opts, 1, rng);
  const double d2 = backoff_delay(opts, 2, rng);
  EXPECT_GE(d1, 0.1);
  EXPECT_LT(d1, 0.2);  // jitter multiplies by [1, 2)
  EXPECT_GE(d2, 0.2);
  EXPECT_LT(d2, 0.4);
  EXPECT_DOUBLE_EQ(backoff_delay(opts, 20, rng), 2.0);
}

TEST(Supervisor, SuccessPassesRecordsThrough) {
  SupervisorOptions opts;
  Xoshiro256 rng(1);
  const auto report = supervise_unit(
      [](CancellationToken&) {
        RunRecord rec;
        rec.system = "Fake";
        rec.seconds = 0.5;
        return std::vector<RunRecord>{rec};
      },
      opts, rng);
  EXPECT_EQ(report.outcome, Outcome::kSuccess);
  EXPECT_EQ(report.attempts, 1);
  ASSERT_EQ(report.records.size(), 1u);
  EXPECT_EQ(report.records[0].system, "Fake");
}

TEST(Supervisor, WatchdogCancelsCooperativeLoopAtDeadline) {
  SupervisorOptions opts;
  opts.timeout_seconds = 0.2;
  Xoshiro256 rng(1);
  const auto report = supervise_unit(
      [](CancellationToken& token) -> std::vector<RunRecord> {
        for (;;) {  // cooperative livelock: only the watchdog ends it
          token.checkpoint();
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      },
      opts, rng);
  EXPECT_EQ(report.outcome, Outcome::kTimeout);
  // The watchdog cannot fire before its steady-clock deadline.
  EXPECT_GE(report.elapsed_seconds, 0.2);
}

TEST(Supervisor, TransientRetriedUntilSuccess) {
  SupervisorOptions opts;
  opts.max_retries = 3;
  opts.backoff_base_seconds = 1e-4;
  opts.backoff_max_seconds = 1e-3;
  Xoshiro256 rng(1);
  int calls = 0;
  const auto report = supervise_unit(
      [&](CancellationToken&) -> std::vector<RunRecord> {
        if (++calls < 3) throw TransientError("flaky");
        return {};
      },
      opts, rng);
  EXPECT_EQ(report.outcome, Outcome::kSuccess);
  EXPECT_EQ(report.attempts, 3);
  EXPECT_EQ(calls, 3);
}

TEST(Supervisor, TransientExhaustsRetryBudget) {
  SupervisorOptions opts;
  opts.max_retries = 2;
  opts.backoff_base_seconds = 1e-4;
  Xoshiro256 rng(1);
  int calls = 0;
  const auto report = supervise_unit(
      [&](CancellationToken&) -> std::vector<RunRecord> {
        ++calls;
        throw TransientError("always flaky");
      },
      opts, rng);
  EXPECT_EQ(report.outcome, Outcome::kTransient);
  EXPECT_EQ(report.attempts, 3);  // 1 try + 2 retries
  EXPECT_EQ(calls, 3);
  EXPECT_NE(report.message.find("always flaky"), std::string::npos);
}

TEST(Supervisor, NonTransientFailuresAreNotRetried) {
  SupervisorOptions opts;
  opts.max_retries = 5;
  Xoshiro256 rng(1);
  int calls = 0;
  const auto report = supervise_unit(
      [&](CancellationToken&) -> std::vector<RunRecord> {
        ++calls;
        throw EpgsError("deterministic bug");
      },
      opts, rng);
  EXPECT_EQ(report.outcome, Outcome::kCrash);
  EXPECT_EQ(calls, 1) << "retrying a deterministic failure wastes the sweep";
}

TEST(Supervisor, RetryAllFailuresWidensRetryToCrashes) {
  // The chaos posture: with retry_all_failures a contained crash retries
  // even without a snapshot (full restart), and the recovered report
  // remembers what the earlier attempts died of.
  SupervisorOptions opts;
  opts.max_retries = 2;
  opts.retry_all_failures = true;
  opts.backoff_base_seconds = 1e-4;
  opts.backoff_max_seconds = 1e-3;
  Xoshiro256 rng(1);
  int calls = 0;
  const auto report = supervise_unit(
      [&](CancellationToken&) -> std::vector<RunRecord> {
        if (++calls < 3) throw EpgsError("chaos-injected fault");
        return {};
      },
      opts, rng);
  EXPECT_EQ(report.outcome, Outcome::kSuccess);
  EXPECT_EQ(report.attempts, 3);
  EXPECT_EQ(report.last_failure, Outcome::kCrash);
}

TEST(Supervisor, RetryAllStillTreatsUnsupportedAsTerminal) {
  // kUnsupported reproduces by construction; even the chaos posture must
  // not burn its retry budget on it.
  SupervisorOptions opts;
  opts.max_retries = 5;
  opts.retry_all_failures = true;
  Xoshiro256 rng(1);
  int calls = 0;
  const auto report = supervise_unit(
      [&](CancellationToken&) -> std::vector<RunRecord> {
        ++calls;
        throw UnsupportedAlgorithm("no BC on Graph500");
      },
      opts, rng);
  EXPECT_EQ(report.outcome, Outcome::kUnsupported);
  EXPECT_EQ(calls, 1);
}

// --- supervised sweeps with injected faults -----------------------------

TEST(SupervisedRun, HangCancelledAtDeadlineSweepContinues) {
  auto cfg = tiny_config();
  cfg.supervisor.timeout_seconds = 0.3;
  fault::Scoped fault(
      {.system = "GAP", .kind = fault::Kind::kHang, .phase = "bfs"});

  const auto result = run_experiment(cfg);

  const auto timeouts = records_with(result, Outcome::kTimeout);
  ASSERT_EQ(timeouts.size(), 1u);
  EXPECT_EQ(timeouts[0].trial, 0);
  EXPECT_EQ(timeouts[0].algorithm, "BFS");
  EXPECT_EQ(std::string_view(timeouts[0].phase), phase::kAlgorithm);
  // Cancellation cannot precede the steady-clock deadline.
  EXPECT_GE(timeouts[0].seconds, 0.3);
  // The other two trials ran to completion after the DNF.
  EXPECT_EQ(result.seconds_of("GAP", phase::kAlgorithm, "BFS").size(), 2u);
}

TEST(SupervisedRun, AbortContainedByIsolationSweepContinues) {
  auto cfg = tiny_config();
  cfg.systems = {"GAP", "GraphMat"};
  cfg.num_roots = 2;
  cfg.supervisor.isolate = true;
  // Children inherit the armed plan at fork() and counters never
  // propagate back, so every GAP child aborts.
  fault::Scoped fault(
      {.system = "GAP", .kind = fault::Kind::kAbort, .phase = "bfs"});

  const auto result = run_experiment(cfg);

  const auto crashes = records_with(result, Outcome::kCrash);
  ASSERT_EQ(crashes.size(), 2u);
  for (const auto& r : crashes) {
    EXPECT_EQ(r.system, "GAP");
    EXPECT_NE(r.extra.at("error").find("signal"), std::string::npos);
  }
  // GraphMat's isolated trials succeeded and their records (with work
  // counters) crossed the pipe intact.
  const auto gm = result.seconds_of("GraphMat", phase::kAlgorithm, "BFS");
  EXPECT_EQ(gm.size(), 2u);
  for (const auto& r : result.records) {
    if (r.system == "GraphMat" &&
        std::string_view(r.phase) == phase::kAlgorithm) {
      EXPECT_GT(r.work.edges_processed, 0u);
    }
  }
}

TEST(SupervisedRun, TransientFaultRetriedToSuccess) {
  auto cfg = tiny_config();
  cfg.num_roots = 1;
  cfg.supervisor.max_retries = 2;
  cfg.supervisor.backoff_base_seconds = 1e-4;
  cfg.supervisor.backoff_max_seconds = 1e-3;
  fault::Scoped fault({.system = "GAP",
                       .kind = fault::Kind::kTransient,
                       .max_fires = 1,
                       .phase = "bfs"});

  const auto result = run_experiment(cfg);

  EXPECT_EQ(fault::fire_count(), 1);
  EXPECT_TRUE(records_with(result, Outcome::kTransient).empty());
  const auto secs = result.seconds_of("GAP", phase::kAlgorithm, "BFS");
  ASSERT_EQ(secs.size(), 1u);
  bool attempts_recorded = false;
  for (const auto& r : result.records) {
    if (std::string_view(r.phase) == phase::kAlgorithm) {
      attempts_recorded |= r.extra.count("attempts") != 0 &&
                           r.extra.at("attempts") == "2";
    }
  }
  EXPECT_TRUE(attempts_recorded);
}

TEST(SupervisedRun, TransientExhaustionRecordedAsDnf) {
  auto cfg = tiny_config();
  cfg.num_roots = 1;
  cfg.supervisor.max_retries = 1;
  cfg.supervisor.backoff_base_seconds = 1e-4;
  fault::Scoped fault({.system = "GAP",
                       .kind = fault::Kind::kTransient,
                       .max_fires = 1000,
                       .phase = "bfs"});

  const auto result = run_experiment(cfg);

  const auto dnf = records_with(result, Outcome::kTransient);
  ASSERT_EQ(dnf.size(), 1u);
  EXPECT_EQ(dnf[0].extra.at("attempts"), "2");
  EXPECT_TRUE(result.seconds_of("GAP", phase::kAlgorithm, "BFS").empty());
}

TEST(SupervisedRun, WrongOutputCaughtByValidation) {
  auto cfg = tiny_config();
  cfg.num_roots = 2;
  cfg.validate = true;
  fault::Scoped fault({.system = "GAP",
                       .kind = fault::Kind::kWrongOutput,
                       .max_fires = 1,
                       .phase = "bfs"});

  const auto result = run_experiment(cfg);

  const auto bad = records_with(result, Outcome::kValidationFailed);
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0].trial, 0);
  EXPECT_NE(bad[0].extra.at("error").find("BFS invalid"),
            std::string::npos);
  EXPECT_EQ(result.seconds_of("GAP", phase::kAlgorithm, "BFS").size(), 1u);
}

TEST(SupervisedRun, UnknownSystemIsConfigOutcomeNotAbort) {
  auto cfg = tiny_config();
  cfg.systems = {"NoSuchSystem", "GAP"};
  const auto result = run_experiment(cfg);
  const auto bad = records_with(result, Outcome::kConfig);
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0].system, "NoSuchSystem");
  EXPECT_EQ(result.seconds_of("GAP", phase::kAlgorithm, "BFS").size(), 3u);
}

// --- journal and resume --------------------------------------------------

TEST_F(SupervisorDir, JournalRoundTripsUnits) {
  Journal j;
  j.open_fresh(journal_path(), "fp-1");
  TrialReport rep;
  rep.outcome = Outcome::kSuccess;
  rep.attempts = 2;
  RunRecord rec;
  rec.dataset = "d";
  rec.system = "GAP";
  rec.algorithm = "BFS";
  rec.trial = 0;
  rec.phase = std::string(phase::kAlgorithm);
  rec.seconds = 1.25;
  rec.work.edges_processed = 42;
  rep.records = {rec};
  j.append("GAP|BFS|0", rep);
  TrialReport fail;
  fail.outcome = Outcome::kTimeout;
  fail.records = {};
  j.append("GAP|BFS|1", fail);
  j.close();

  const auto entries = replay_journal(journal_path(), "fp-1");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].key, "GAP|BFS|0");
  EXPECT_EQ(entries[0].outcome, Outcome::kSuccess);
  EXPECT_EQ(entries[0].attempts, 2);
  ASSERT_EQ(entries[0].records.size(), 1u);
  EXPECT_EQ(entries[0].records[0].work.edges_processed, 42u);
  EXPECT_NEAR(entries[0].records[0].seconds, 1.25, 1e-12);
  EXPECT_EQ(entries[1].outcome, Outcome::kTimeout);
  EXPECT_TRUE(entries[1].records.empty());
}

TEST_F(SupervisorDir, JournalEndLineCarriesRetryAndResumeDetail) {
  Journal j;
  j.open_fresh(journal_path(), "fp");
  TrialReport rep;
  rep.outcome = Outcome::kSuccess;
  rep.attempts = 3;
  rep.last_failure = Outcome::kOomKilled;
  rep.resumed_from_iter = 17;
  j.append("GAP|PageRank|0", rep);
  j.close();

  const auto entries = replay_journal(journal_path(), "fp");
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].attempts, 3);
  EXPECT_EQ(entries[0].last_failure, Outcome::kOomKilled);
  EXPECT_EQ(entries[0].resumed_from_iter, 17);
}

TEST_F(SupervisorDir, ReplayAcceptsBareEndFromLegacyJournals) {
  // Journals written before the checkpoint layer closed groups with a
  // bare "end"; replay must keep accepting them.
  std::ofstream(journal_path())
      << "epgs-journal-v1\nconfig fp\n"
      << "unit GAP|BFS|0|success|2|0\nend\n";
  const auto entries = replay_journal(journal_path(), "fp");
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].attempts, 2);
  EXPECT_EQ(entries[0].last_failure, Outcome::kSuccess);
  EXPECT_EQ(entries[0].resumed_from_iter, -1);
}

TEST_F(SupervisorDir, ReplaySkipsCheckpointBreadcrumbs) {
  Journal j;
  j.open_fresh(journal_path(), "fp");
  TrialReport ok;
  j.append("GAP|PageRank|0", ok);
  j.append_checkpoint("GAP|PageRank|1", 7);
  TrialReport fail;
  fail.outcome = Outcome::kCrash;
  j.append("GAP|PageRank|1", fail);
  j.append_checkpoint("GAP|PageRank|2", 3);
  j.close();

  const auto entries = replay_journal(journal_path(), "fp");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].key, "GAP|PageRank|0");
  EXPECT_EQ(entries[1].outcome, Outcome::kCrash);
}

TEST_F(SupervisorDir, ReplayToleratesTornCheckpointTail) {
  Journal j;
  j.open_fresh(journal_path(), "fp");
  TrialReport ok;
  j.append("GAP|PageRank|0", ok);
  j.close();
  {
    // Crash mid-breadcrumb: a half-written ckpt line ends the file.
    std::ofstream f(journal_path(), std::ios::app);
    f << "ckpt GAP|Page";
  }
  const auto entries = replay_journal(journal_path(), "fp");
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].key, "GAP|PageRank|0");
}

TEST_F(SupervisorDir, ReplayDuplicateKeysLastWins) {
  // A resumed sweep re-runs a unit that earlier failed with a snapshot:
  // the journal holds both groups and the collector must keep the later.
  Journal j;
  j.open_fresh(journal_path(), "fp");
  TrialReport fail;
  fail.outcome = Outcome::kTimeout;
  j.append("GAP|PageRank|0", fail);
  TrialReport ok;
  ok.attempts = 1;
  ok.resumed_from_iter = 9;
  j.append("GAP|PageRank|0", ok);
  j.close();

  const auto entries = replay_journal(journal_path(), "fp");
  ASSERT_EQ(entries.size(), 2u);  // replay returns both, in order
  EXPECT_EQ(entries[1].outcome, Outcome::kSuccess);
  EXPECT_EQ(entries[1].resumed_from_iter, 9);

  SupervisorOptions sup;
  sup.journal_path = journal_path();
  sup.resume = true;
  RecordCollector collector(sup, "fp");
  ASSERT_TRUE(collector.is_journaled("GAP|PageRank|0"));
  EXPECT_EQ(collector.journaled().at("GAP|PageRank|0").outcome,
            Outcome::kSuccess);
}

TEST_F(SupervisorDir, ResumableFailureWithSnapshotIsRerunOnResume) {
  const fs::path ckpt_dir = dir_ / "ckpts";
  fs::create_directories(ckpt_dir);
  Journal j;
  j.open_fresh(journal_path(), "fp");
  TrialReport crash;
  crash.outcome = Outcome::kCrash;
  j.append("GAP|PageRank|0", crash);  // snapshot exists -> re-run
  TrialReport timeout;
  timeout.outcome = Outcome::kTimeout;
  j.append("GAP|PageRank|1", timeout);  // no snapshot -> settled DNF
  TrialReport interrupted;
  interrupted.outcome = Outcome::kInterrupted;
  j.append("GAP|PageRank|2", interrupted);  // always re-run
  j.close();
  std::ofstream(CheckpointSession::path_for(ckpt_dir, "GAP|PageRank|0"))
      << "placeholder";

  SupervisorOptions sup;
  sup.journal_path = journal_path();
  sup.resume = true;
  sup.checkpoint_dir = ckpt_dir.string();
  RecordCollector collector(sup, "fp");
  EXPECT_FALSE(collector.is_journaled("GAP|PageRank|0"));
  EXPECT_TRUE(collector.is_journaled("GAP|PageRank|1"));
  EXPECT_FALSE(collector.is_journaled("GAP|PageRank|2"));
}

TEST_F(SupervisorDir, ReplayRejectsFingerprintMismatch) {
  Journal j;
  j.open_fresh(journal_path(), "fp-1");
  j.close();
  EXPECT_NO_THROW(replay_journal(journal_path(), "fp-1"));
  EXPECT_THROW(replay_journal(journal_path(), "fp-2"), EpgsError);
  EXPECT_THROW(replay_journal((dir_ / "missing").string(), "fp-1"),
               EpgsError);
}

TEST_F(SupervisorDir, ReplayDropsTornTrailingGroup) {
  Journal j;
  j.open_fresh(journal_path(), "fp");
  TrialReport rep;
  j.append("GAP|BFS|0", rep);
  j.close();
  {
    // Simulate a crash mid-append: a unit line with no records / "end".
    std::ofstream f(journal_path(), std::ios::app);
    f << "unit GAP|BFS|1|success|1|3\nrec half-written";
  }
  const auto entries = replay_journal(journal_path(), "fp");
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].key, "GAP|BFS|0");
}

TEST_F(SupervisorDir, ResumeReexecutesZeroCompletedTrials) {
  auto cfg = tiny_config();
  cfg.systems = {"GAP", "Graph500"};  // per-trial and build-once paths
  cfg.num_roots = 2;
  cfg.supervisor.journal_path = journal_path();

  const auto first = run_experiment(cfg);
  EXPECT_TRUE(records_with(first, Outcome::kSuccess).size() ==
              first.records.size());

  // Count every phase the resumed sweep actually starts: a correct resume
  // starts none.
  cfg.supervisor.resume = true;
  fault::Scoped probe({.kind = fault::Kind::kNone, .max_fires = 0});
  const auto second = run_experiment(cfg);
  EXPECT_EQ(fault::phase_events(), 0)
      << "resume re-executed journaled trials";
  EXPECT_EQ(second.records.size(), first.records.size());
  EXPECT_EQ(second.seconds_of("GAP", phase::kAlgorithm, "BFS").size(), 2u);
  EXPECT_EQ(second.seconds_of("Graph500", phase::kBuild).size(), 1u);
}

TEST_F(SupervisorDir, ResumeRunsOnlyTheTornTrial) {
  auto cfg = tiny_config();
  cfg.supervisor.journal_path = journal_path();
  const auto first = run_experiment(cfg);

  // Chop the final "end" so the last journaled unit looks in-flight.
  std::ifstream in(journal_path());
  std::stringstream buf;
  buf << in.rdbuf();
  in.close();
  std::string text = buf.str();
  const auto last_end = text.rfind("\nend ");
  ASSERT_NE(last_end, std::string::npos);
  std::ofstream(journal_path(), std::ios::trunc)
      << text.substr(0, last_end + 1);

  cfg.supervisor.resume = true;
  fault::Scoped probe(
      {.system = "GAP", .kind = fault::Kind::kNone, .max_fires = 0});
  const auto second = run_experiment(cfg);
  // Exactly one GAP unit re-ran: its rebuild + its BFS, two phase starts.
  EXPECT_EQ(fault::phase_events(), 2);
  EXPECT_EQ(second.records.size(), first.records.size());
  EXPECT_EQ(second.seconds_of("GAP", phase::kAlgorithm, "BFS").size(), 3u);
}

TEST_F(SupervisorDir, ResumeMayAddSystems) {
  auto cfg = tiny_config();
  cfg.num_roots = 2;
  cfg.supervisor.journal_path = journal_path();
  (void)run_experiment(cfg);

  cfg.systems = {"GAP", "GraphMat"};
  cfg.supervisor.resume = true;
  fault::Scoped probe(
      {.system = "GAP", .kind = fault::Kind::kNone, .max_fires = 0});
  const auto result = run_experiment(cfg);
  EXPECT_EQ(fault::phase_events(), 0) << "GAP was fully journaled";
  EXPECT_EQ(result.seconds_of("GraphMat", phase::kAlgorithm, "BFS").size(),
            2u);
}

TEST_F(SupervisorDir, DnfOutcomesAreJournaledAndNotRetriedOnResume) {
  auto cfg = tiny_config();
  cfg.num_roots = 2;
  cfg.supervisor.timeout_seconds = 0.3;
  cfg.supervisor.journal_path = journal_path();
  {
    fault::Scoped fault({.system = "GAP",
                         .kind = fault::Kind::kHang,
                         .max_fires = 1,
                         .phase = "bfs"});
    const auto first = run_experiment(cfg);
    ASSERT_EQ(records_with(first, Outcome::kTimeout).size(), 1u);
  }
  // Resume: the timeout is settled history, not a retry candidate.
  cfg.supervisor.resume = true;
  fault::Scoped probe({.kind = fault::Kind::kNone, .max_fires = 0});
  const auto second = run_experiment(cfg);
  EXPECT_EQ(fault::phase_events(), 0);
  ASSERT_EQ(records_with(second, Outcome::kTimeout).size(), 1u);
  EXPECT_EQ(second.seconds_of("GAP", phase::kAlgorithm, "BFS").size(), 1u);
}

// --- outcome accounting --------------------------------------------------

TEST(OutcomeTaxonomy, NamesRoundTrip) {
  for (int i = 0; i < kNumOutcomes; ++i) {
    const auto o = static_cast<Outcome>(i);
    EXPECT_EQ(outcome_from_name(outcome_name(o)), o);
  }
  EXPECT_THROW((void)outcome_from_name("exploded"), EpgsError);
}

TEST(OutcomeTaxonomy, SummaryCountsPerSystem) {
  std::vector<RunRecord> records(5);
  records[0].system = "GAP";
  records[1].system = "GAP";
  records[1].outcome = Outcome::kTimeout;
  records[2].system = "GraphMat";
  records[3].system = "GraphMat";
  records[4].system = "GraphMat";
  records[4].outcome = Outcome::kCrash;
  const auto rows = outcome_summary(records);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].system, "GAP");
  EXPECT_EQ(rows[0].total(), 2);
  EXPECT_EQ(rows[0].failures(), 1);
  EXPECT_EQ(rows[1].system, "GraphMat");
  EXPECT_EQ(rows[1].failures(), 1);

  const auto table = render_outcome_table(rows);
  EXPECT_NE(table.find("system"), std::string::npos);
  EXPECT_NE(table.find("timeout"), std::string::npos);
  EXPECT_NE(table.find("crash"), std::string::npos);
  EXPECT_EQ(table.find("validation-failed"), std::string::npos)
      << "all-zero outcome columns are elided";
}

}  // namespace
}  // namespace epgs::harness
