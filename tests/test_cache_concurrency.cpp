// Cross-process dataset-cache coordination: several forked processes
// race `materialize` on one cache directory and the per-entry flock must
// elect exactly one builder — no torn entries, every process ends with a
// byte-identical snapshot, and the cache validates afterwards.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/mapped_file.hpp"
#include "core/parallel.hpp"
#include "graph/cache_lock.hpp"
#include "graph/dataset_cache.hpp"
#include "test_util.hpp"

namespace epgs {
namespace {

namespace fs = std::filesystem;

class ConcurrencyDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("epgs_concurrency_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(ConcurrencyDir, FlockBlocksSecondProcessUntilRelease) {
  const fs::path lock = dir_ / "entry.lock";
  CacheLock mine;
  ASSERT_TRUE(mine.acquire(lock, 1.0));
  EXPECT_TRUE(mine.held());
  EXPECT_FALSE(mine.contended());
  EXPECT_EQ(CacheLock::holder_pid(lock), ::getpid());
  EXPECT_TRUE(CacheLock::holder_alive(lock));

  // A second *process* must time out while we hold it (flock is
  // per-open-file-description, so the contender must not share ours).
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    CacheLock theirs;
    const bool got = theirs.acquire(lock, 0.3);
    ::_exit(got ? 1 : 0);  // timing out is the expected outcome
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  mine.release();
  CacheLock again;
  EXPECT_TRUE(again.acquire(lock, 1.0));
}

TEST_F(ConcurrencyDir, DeadHolderLockIsStolenImmediately) {
  const fs::path lock = dir_ / "entry.lock";
  // The child takes the lock and dies holding it; the kernel's flock
  // auto-release IS the stale-lock steal.
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    CacheLock theirs;
    if (!theirs.acquire(lock, 1.0)) ::_exit(1);
    ::_exit(0);  // exit without release(): the kernel drops the flock
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);

  CacheLock mine;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(mine.acquire(lock, 5.0));
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(waited, 1.0);  // a steal, not a timeout ride-out
  // The dead holder's pid is still readable for diagnostics until we
  // overwrite it — and must name a process that no longer exists.
  EXPECT_TRUE(CacheLock::holder_alive(lock));  // now it names us
}

TEST_F(ConcurrencyDir, ConcurrentMaterializeElectsExactlyOneBuilder) {
  constexpr int kProcs = 4;
  const fs::path cache_dir = dir_ / "cache";
  const std::string fingerprint = "concurrency-stress-v1";

  std::vector<pid_t> pids;
  for (int i = 0; i < kProcs; ++i) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid != 0) {
      pids.push_back(pid);
      continue;
    }
    // ---- child ----
    // libgomp's pool does not survive fork(); stay single-threaded.
    ThreadScope scope(1);
    int exit_code = 0;
    bool built = false;
    std::string digest;
    try {
      DatasetCache cache(cache_dir);
      EdgeList el;
      const auto entry = cache.materialize(
          fingerprint, "stress", [&]() -> const EdgeList& {
            built = true;
            // Stretch the build window so the losers genuinely wait on
            // the lock instead of racing a finished publish.
            std::this_thread::sleep_for(std::chrono::milliseconds(150));
            el = test::line_graph(500, true);
            return el;
          });
      const MappedFile snap(entry.snapshot);
      digest = content_hash_hex(snap.view());
      if (entry.num_vertices != 500) exit_code = 2;
    } catch (...) {
      exit_code = 3;
    }
    std::ofstream(dir_ / ("result_" + std::to_string(i) + ".txt"))
        << (built ? 1 : 0) << ' '
        << (digest.empty() ? "none" : digest) << '\n';
    ::_exit(exit_code);
  }

  for (const pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
  }

  int builders = 0;
  std::vector<std::string> digests;
  for (int i = 0; i < kProcs; ++i) {
    std::ifstream in(dir_ / ("result_" + std::to_string(i) + ".txt"));
    ASSERT_TRUE(in.good()) << "child " << i << " left no result";
    int built = -1;
    std::string digest;
    in >> built >> digest;
    builders += built;
    digests.push_back(digest);
  }
  EXPECT_EQ(builders, 1) << "the lock must elect exactly one builder";
  for (const auto& d : digests) {
    EXPECT_EQ(d, digests.front());  // everyone saw the same bytes
    EXPECT_NE(d, "none");
  }

  // No torn entries: the parent validates the published entry cold, and
  // no staging directory survived.
  DatasetCache cache(cache_dir);
  const auto entry = cache.lookup(fingerprint);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->num_vertices, 500u);
  EXPECT_EQ(cache.stats().invalidations, 0u);
  for (const auto& e : fs::directory_iterator(cache_dir)) {
    EXPECT_EQ(e.path().filename().string().rfind(".tmp-", 0),
              std::string::npos)
        << "leaked staging dir " << e.path();
  }
}

}  // namespace
}  // namespace epgs
