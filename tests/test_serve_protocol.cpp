// Wire-protocol hardening tests: framing round-trips, malformed frames,
// truncated length prefixes, oversized payloads, unknown request shapes —
// every one must surface as a typed ProtocolError (or typed `protocol`
// reply), and a live server fed garbage must keep serving.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>

#include "core/rng.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace epgs {
namespace {

namespace fs = std::filesystem;

/// A connected AF_UNIX stream pair: write into one end, parse the other.
struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
  void send_raw(const std::string& bytes) const {
    ASSERT_EQ(::send(a, bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
  }
  void close_writer() {
    ::close(a);
    a = -1;
  }
};

TEST(ServeProtocol, FrameRoundTrip) {
  SocketPair sp;
  serve::write_frame(sp.a, "run system=GAP algorithm=BFS");
  serve::write_frame(sp.a, "");  // empty payload is a legal frame
  auto first = serve::read_frame(sp.b);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, "run system=GAP algorithm=BFS");
  auto second = serve::read_frame(sp.b);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, "");
  sp.close_writer();
  EXPECT_FALSE(serve::read_frame(sp.b).has_value());  // clean EOF
}

TEST(ServeProtocol, BadMagicIsProtocolError) {
  SocketPair sp;
  sp.send_raw("EPGX00000004ping");
  sp.close_writer();
  EXPECT_THROW((void)serve::read_frame(sp.b), serve::ProtocolError);
}

TEST(ServeProtocol, NonHexLengthIsProtocolError) {
  SocketPair sp;
  sp.send_raw("EPGQzzzzzzzzping");
  sp.close_writer();
  EXPECT_THROW((void)serve::read_frame(sp.b), serve::ProtocolError);
}

TEST(ServeProtocol, UppercaseHexLengthIsRejected) {
  // The length prefix is canonical lowercase hex; a sender emitting
  // "0000000A" framed the request with different code than ours.
  SocketPair sp;
  sp.send_raw("EPGQ0000000Aping012345");
  sp.close_writer();
  EXPECT_THROW((void)serve::read_frame(sp.b), serve::ProtocolError);
}

TEST(ServeProtocol, OversizedLengthIsRejectedBeforeAllocation) {
  SocketPair sp;
  sp.send_raw("EPGQffffffff");
  sp.close_writer();
  EXPECT_THROW((void)serve::read_frame(sp.b), serve::ProtocolError);
}

TEST(ServeProtocol, TruncatedHeaderIsProtocolError) {
  SocketPair sp;
  sp.send_raw("EPGQ0000");  // EOF mid-header
  sp.close_writer();
  EXPECT_THROW((void)serve::read_frame(sp.b), serve::ProtocolError);
}

TEST(ServeProtocol, TruncatedPayloadIsProtocolError) {
  SocketPair sp;
  sp.send_raw("EPGQ0000000aping");  // promises 10 bytes, delivers 4
  sp.close_writer();
  EXPECT_THROW((void)serve::read_frame(sp.b), serve::ProtocolError);
}

TEST(ServeProtocol, EncodeRejectsOversizedPayload) {
  const std::string big(serve::kMaxFrameBytes + 1, 'x');
  EXPECT_THROW((void)serve::encode_frame(big), serve::ProtocolError);
}

TEST(ServeProtocol, RequestParsingRejectsMalformedShapes) {
  EXPECT_THROW((void)serve::parse_request("launch system=GAP"),
               serve::ProtocolError);  // unknown verb
  EXPECT_THROW((void)serve::parse_request("ping now"),
               serve::ProtocolError);  // non-run verb with arguments
  EXPECT_THROW((void)serve::parse_request("run algorithm=BFS"),
               serve::ProtocolError);  // missing system
  EXPECT_THROW((void)serve::parse_request("run system=GAP"),
               serve::ProtocolError);  // missing algorithm
  EXPECT_THROW(
      (void)serve::parse_request("run system=GAP algorithm=BFS bogus=1"),
      serve::ProtocolError);  // unknown key
  EXPECT_THROW(
      (void)serve::parse_request("run system=GAP algorithm=BFS scale=9 "
                                 "scale=9"),
      serve::ProtocolError);  // duplicate key
  EXPECT_THROW(
      (void)serve::parse_request("run system=GAP algorithm=BFS scale=tall"),
      serve::ProtocolError);  // non-numeric value
  EXPECT_THROW(
      (void)serve::parse_request("run system=GAP algorithm=BFS roots=0"),
      serve::ProtocolError);  // roots must be >= 1
  EXPECT_THROW(
      (void)serve::parse_request("run system=GAP algorithm=Quantum"),
      serve::ProtocolError);  // unknown algorithm
  EXPECT_THROW((void)serve::parse_request("run system=GAP algorithm=BFS "
                                          "symmetrize=yes"),
               serve::ProtocolError);  // booleans are strictly 0/1
  EXPECT_THROW((void)serve::parse_request("run system=GAP\nalgorithm=BFS"),
               serve::ProtocolError);  // payload must be one line
  EXPECT_THROW((void)serve::parse_request("run system=GAP =1"),
               serve::ProtocolError);  // empty key
}

TEST(ServeProtocol, RequestRenderParseRoundTrip) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 50; ++i) {
    serve::Request req;
    req.verb = serve::Verb::kRun;
    req.graph.kind = (i % 3 == 0) ? harness::GraphSpec::Kind::kKronecker
                     : (i % 3 == 1)
                         ? harness::GraphSpec::Kind::kPatentsLike
                         : harness::GraphSpec::Kind::kDotaLike;
    req.graph.scale = static_cast<int>(rng.uniform_u64(20)) + 1;
    req.graph.edgefactor = static_cast<int>(rng.uniform_u64(32)) + 1;
    req.graph.fraction = rng.uniform();
    req.graph.seed = rng.next();
    req.graph.symmetrize = rng.next() % 2 == 0;
    req.graph.deduplicate = rng.next() % 2 == 0;
    req.graph.add_weights = rng.next() % 2 == 0;
    req.graph.max_weight = static_cast<std::uint32_t>(rng.uniform_u64(255)) + 1;
    req.system = (i % 2 == 0) ? "GAP" : "Ligra";
    req.algorithm = (i % 2 == 0) ? harness::Algorithm::kBfs
                                 : harness::Algorithm::kPageRank;
    req.roots = static_cast<int>(rng.uniform_u64(16)) + 1;
    req.threads = static_cast<int>(rng.uniform_u64(8));
    req.deadline_ms = static_cast<std::int64_t>(rng.uniform_u64(10000));

    const serve::Request back =
        serve::parse_request(serve::render_request(req));
    EXPECT_EQ(back.graph.kind, req.graph.kind);
    EXPECT_EQ(back.graph.scale, req.graph.scale);
    EXPECT_EQ(back.graph.edgefactor, req.graph.edgefactor);
    EXPECT_EQ(back.graph.fraction, req.graph.fraction);  // precision(17)
    EXPECT_EQ(back.graph.seed, req.graph.seed);
    EXPECT_EQ(back.graph.symmetrize, req.graph.symmetrize);
    EXPECT_EQ(back.graph.deduplicate, req.graph.deduplicate);
    // SSSP implies weights server-side; otherwise faithful round-trip.
    EXPECT_EQ(back.graph.add_weights,
              req.graph.add_weights ||
                  req.algorithm == harness::Algorithm::kSssp);
    EXPECT_EQ(back.graph.max_weight, req.graph.max_weight);
    EXPECT_EQ(back.system, req.system);
    EXPECT_EQ(back.algorithm, req.algorithm);
    EXPECT_EQ(back.roots, req.roots);
    EXPECT_EQ(back.threads, req.threads);
    EXPECT_EQ(back.deadline_ms, req.deadline_ms);
  }
}

TEST(ServeProtocol, ReplyRenderParseRoundTrip) {
  const serve::Reply ok{serve::ReplyKind::kOk, "run", "csv,line\n1,2\n"};
  const serve::Reply back = serve::parse_reply(serve::render_reply(ok));
  EXPECT_EQ(back.kind, serve::ReplyKind::kOk);
  EXPECT_EQ(back.verb, "run");
  EXPECT_EQ(back.body, ok.body);

  const serve::Reply err{serve::ReplyKind::kOverloaded, "run",
                         "queue full (16 batches); retry later"};
  const serve::Reply eback = serve::parse_reply(serve::render_reply(err));
  EXPECT_EQ(eback.kind, serve::ReplyKind::kOverloaded);
  EXPECT_EQ(eback.body, err.body);

  EXPECT_THROW((void)serve::parse_reply("mumble mumble"),
               serve::ProtocolError);
  EXPECT_THROW((void)serve::parse_reply("error sideways broken"),
               serve::ProtocolError);  // unknown kind
}

/// Fuzz a LIVE server with garbage and verify it never stops serving.
class ServeProtocolLive : public ::testing::Test {
 protected:
  void SetUp() override {
    static std::atomic<int> counter{0};
    dir_ = fs::temp_directory_path() /
           ("epgs_proto_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1)));
    fs::create_directories(dir_);
    serve::ServerOptions opts;
    opts.socket_path = (dir_ / "epg.sock").string();
    server_ = std::make_unique<serve::Server>(opts);
  }
  void TearDown() override {
    server_.reset();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  [[nodiscard]] int connect_raw() const {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    const std::string path = server_->socket_path();
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
        0);
    return fd;
  }

  fs::path dir_;
  std::unique_ptr<serve::Server> server_;
};

TEST_F(ServeProtocolLive, MalformedRequestGetsTypedReplyAndKeepsConnection) {
  const int fd = connect_raw();
  // Well-formed frame, malformed request: typed error, connection stays.
  serve::write_frame(fd, "run system=GAP algorithm=BFS bogus=1");
  auto reply = serve::read_frame(fd);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(serve::parse_reply(*reply).kind, serve::ReplyKind::kProtocol);
  // Same connection still serves valid requests afterwards.
  serve::write_frame(fd, "ping");
  reply = serve::read_frame(fd);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(serve::parse_reply(*reply).kind, serve::ReplyKind::kOk);
  ::close(fd);

  EXPECT_GE(server_->snapshot().protocol_errors, 1u);
}

TEST_F(ServeProtocolLive, GarbageBytesNeverKillTheServer) {
  // Seeded fuzz: raw garbage, bad magics, truncated frames, giant length
  // prefixes — across many connections, some abandoned mid-frame.
  Xoshiro256 rng(0xfeedbeef);
  for (int round = 0; round < 30; ++round) {
    const int fd = connect_raw();
    std::string junk;
    const auto len = rng.uniform_u64(64);
    for (std::uint64_t i = 0; i < len; ++i) {
      junk.push_back(static_cast<char>(rng.next() & 0xff));
    }
    switch (round % 4) {
      case 0:
        break;  // pure garbage
      case 1:
        junk = "EPGQ" + junk;  // magic then garbage length
        break;
      case 2:
        junk = "EPGQ00001000" + junk;  // promises 4KiB, delivers scraps
        break;
      case 3:
        junk = "EPGQffffff";  // truncated header
        break;
    }
    if (!junk.empty()) {
      (void)::send(fd, junk.data(), junk.size(), MSG_NOSIGNAL);
    }
    ::close(fd);
  }

  // After all of it: a fresh client gets clean service.
  const auto pong = serve::query_server(server_->socket_path(), "ping");
  EXPECT_EQ(pong.kind, serve::ReplyKind::kOk);
  const auto stats = serve::query_server(server_->socket_path(), "stats");
  ASSERT_EQ(stats.kind, serve::ReplyKind::kOk);
  EXPECT_NE(stats.body.find("protocol_errors "), std::string::npos);
}

}  // namespace
}  // namespace epgs
