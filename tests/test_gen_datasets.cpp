#include "gen/datasets.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/error.hpp"
#include "graph/transforms.hpp"

namespace epgs::gen {
namespace {

TEST(PatentsLike, SizesScaleWithFraction) {
  PatentsLikeParams p;
  p.fraction = 0.001;
  const auto el = patents_like(p);
  const auto expect_n = static_cast<double>(
      PatentsLikeParams::kPaperVertices) * p.fraction;
  EXPECT_NEAR(static_cast<double>(el.num_vertices), expect_n, 2.0);
  // Edge counts are stochastic; the average out-degree must stay near the
  // paper's ~4.38.
  const double avg_deg =
      static_cast<double>(el.num_edges()) / el.num_vertices;
  EXPECT_GT(avg_deg, 3.0);
  EXPECT_LT(avg_deg, 6.0);
}

TEST(PatentsLike, CitationsPointBackwards) {
  PatentsLikeParams p;
  p.fraction = 0.0005;
  const auto el = patents_like(p);
  ASSERT_TRUE(el.directed);
  EXPECT_FALSE(el.weighted);
  for (const auto& e : el.edges) {
    EXPECT_LT(e.dst, e.src) << "a patent can only cite earlier patents";
  }
}

TEST(PatentsLike, Deterministic) {
  PatentsLikeParams p;
  p.fraction = 0.0005;
  EXPECT_EQ(patents_like(p).edges, patents_like(p).edges);
  PatentsLikeParams q = p;
  q.seed = 99;
  EXPECT_NE(patents_like(p).edges, patents_like(q).edges);
}

TEST(PatentsLike, HeavyTailedInDegree) {
  PatentsLikeParams p;
  p.fraction = 0.002;
  const auto el = patents_like(p);
  const auto in = in_degrees(el);
  const auto max_in = *std::max_element(in.begin(), in.end());
  const double avg_in =
      static_cast<double>(el.num_edges()) / el.num_vertices;
  EXPECT_GT(static_cast<double>(max_in), 20.0 * avg_in)
      << "copy model should create citation hubs";
}

TEST(PatentsLike, NoDuplicateCitationsFromOneVertex) {
  PatentsLikeParams p;
  p.fraction = 0.0005;
  auto el = patents_like(p);
  auto edges = el.edges;
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  const auto dup = std::adjacent_find(
      edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
        return a.src == b.src && a.dst == b.dst;
      });
  EXPECT_EQ(dup, edges.end());
}

TEST(PatentsLike, InvalidFractionThrows) {
  PatentsLikeParams p;
  p.fraction = 0.0;
  EXPECT_THROW(patents_like(p), EpgsError);
  p.fraction = 1.5;
  EXPECT_THROW(patents_like(p), EpgsError);
}

TEST(DotaLike, DenseWeightedSymmetric) {
  DotaLikeParams p;
  p.fraction = 0.02;  // ~1200 vertices
  const auto el = dota_like(p);
  ASSERT_TRUE(el.weighted);
  EXPECT_FALSE(el.directed);

  // Every edge must appear in both directions with equal weight.
  auto edges = el.edges;
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  for (const auto& e : el.edges) {
    const Edge rev{e.dst, e.src, e.w};
    const auto it = std::lower_bound(
        edges.begin(), edges.end(), rev, [](const Edge& a, const Edge& b) {
          return a.src != b.src ? a.src < b.src : a.dst < b.dst;
        });
    ASSERT_NE(it, edges.end());
    EXPECT_EQ(it->src, rev.src);
    EXPECT_EQ(it->dst, rev.dst);
    EXPECT_FLOAT_EQ(it->w, rev.w);
  }
}

TEST(DotaLike, MuchDenserThanPatents) {
  DotaLikeParams p;
  p.fraction = 0.02;
  const auto el = dota_like(p);
  const double avg_deg =
      static_cast<double>(el.num_edges()) / el.num_vertices;
  EXPECT_GT(avg_deg, 50.0) << "dota-league stand-in must be dense";
}

TEST(DotaLike, SkewedActivityCreatesHubs) {
  // Use a fraction where the half-complete-graph density cap does not
  // bind, so hub degrees can stand out from the average.
  DotaLikeParams p;
  p.fraction = 0.05;
  const auto el = dota_like(p);
  const auto deg = out_degrees(el);
  const auto max_deg = *std::max_element(deg.begin(), deg.end());
  const double avg =
      static_cast<double>(el.num_edges()) / el.num_vertices;
  EXPECT_GT(static_cast<double>(max_deg), 2.0 * avg);
}

TEST(DotaLike, Deterministic) {
  DotaLikeParams p;
  p.fraction = 0.01;
  EXPECT_EQ(dota_like(p).edges, dota_like(p).edges);
}

TEST(DotaLike, WeightsArePositiveIntegers) {
  DotaLikeParams p;
  p.fraction = 0.01;
  const auto el = dota_like(p);
  bool any_above_one = false;
  for (const auto& e : el.edges) {
    EXPECT_GE(e.w, 1.0f);
    EXPECT_EQ(e.w, static_cast<float>(static_cast<int>(e.w)));
    any_above_one |= e.w > 1.0f;
  }
  EXPECT_TRUE(any_above_one) << "repeated co-play should raise weights";
}

TEST(DotaLike, InvalidParamsThrow) {
  DotaLikeParams p;
  p.fraction = -1.0;
  EXPECT_THROW(dota_like(p), EpgsError);
  p.fraction = 0.01;
  p.players_per_match = 1;
  EXPECT_THROW(dota_like(p), EpgsError);
}

}  // namespace
}  // namespace epgs::gen
