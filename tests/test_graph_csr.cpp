#include "graph/csr.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/error.hpp"
#include "core/parallel.hpp"
#include "gen/kronecker.hpp"
#include "graph/transforms.hpp"
#include "test_util.hpp"

namespace epgs {
namespace {

EdgeList small_directed() {
  EdgeList el;
  el.num_vertices = 4;
  el.directed = true;
  el.edges = {Edge{0, 2, 1.0f}, Edge{0, 1, 1.0f}, Edge{1, 3, 1.0f},
              Edge{2, 3, 1.0f}, Edge{3, 0, 1.0f}};
  return el;
}

TEST(Csr, BuildsOutAdjacency) {
  const auto g = CSRGraph::from_edges(small_directed());
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 5u);
  const auto n0 = g.neighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], 1u);  // sorted
  EXPECT_EQ(n0[1], 2u);
  EXPECT_EQ(g.degree(3), 1u);
  EXPECT_EQ(g.neighbors(3)[0], 0u);
}

TEST(Csr, TransposeBuildsInAdjacency) {
  const auto g = CSRGraph::from_edges(small_directed(), /*transpose=*/true);
  const auto in3 = g.neighbors(3);
  ASSERT_EQ(in3.size(), 2u);
  EXPECT_EQ(in3[0], 1u);
  EXPECT_EQ(in3[1], 2u);
  EXPECT_EQ(g.degree(0), 1u);  // only 3 -> 0
}

TEST(Csr, WeightsFollowSort) {
  EdgeList el;
  el.num_vertices = 3;
  el.weighted = true;
  el.edges = {Edge{0, 2, 20.0f}, Edge{0, 1, 10.0f}};
  const auto g = CSRGraph::from_edges(el);
  ASSERT_TRUE(g.weighted());
  const auto nbrs = g.neighbors(0);
  const auto ws = g.edge_weights(0);
  ASSERT_EQ(nbrs.size(), 2u);
  EXPECT_EQ(nbrs[0], 1u);
  EXPECT_FLOAT_EQ(ws[0], 10.0f);
  EXPECT_EQ(nbrs[1], 2u);
  EXPECT_FLOAT_EQ(ws[1], 20.0f);
}

TEST(Csr, HasEdge) {
  const auto g = CSRGraph::from_edges(small_directed());
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(3, 0));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(Csr, EmptyGraph) {
  EdgeList el;
  el.num_vertices = 3;
  const auto g = CSRGraph::from_edges(el);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.degree(0), 0u);
  EXPECT_TRUE(g.neighbors(2).empty());
}

TEST(Csr, OutOfRangeEndpointThrows) {
  EdgeList el;
  el.num_vertices = 2;
  el.edges = {Edge{0, 5, 1.0f}};
  EXPECT_THROW(CSRGraph::from_edges(el), EpgsError);
}

TEST(Csr, OffsetsAreMonotone) {
  const auto g = CSRGraph::from_edges(test::two_triangles());
  const auto& off = g.offsets();
  ASSERT_EQ(off.size(), g.num_vertices() + 1u);
  EXPECT_EQ(off.front(), 0u);
  EXPECT_EQ(off.back(), g.num_edges());
  EXPECT_TRUE(std::is_sorted(off.begin(), off.end()));
}

TEST(Csr, BytesAccountsForStorage) {
  const auto g = CSRGraph::from_edges(test::line_graph(10));
  EXPECT_GT(g.bytes(), 0u);
  EXPECT_GE(g.bytes(), g.num_edges() * sizeof(vid_t));
}

TEST(Csr, ParallelEdgesPreserved) {
  EdgeList el;
  el.num_vertices = 2;
  el.edges = {Edge{0, 1, 1.0f}, Edge{0, 1, 1.0f}};
  const auto g = CSRGraph::from_edges(el);
  EXPECT_EQ(g.degree(0), 2u);
}

TEST(Csr, ParallelBuildMatchesSerialBuild) {
  // The parallel Kernel-1 build must be bit-identical to the seed's
  // sequential build: same offsets, same sorted targets, and weights
  // permuted identically (row sort is stable on (target, weight) pairs).
  gen::KroneckerParams p;
  p.scale = 9;
  p.edgefactor = 8;
  const auto base = gen::kronecker(p);
  const auto weighted = with_random_weights(base, 1, 15);
  // Force a team: from_edges dispatches to the serial build when
  // max_threads() == 1, which would make this test vacuous on 1-core CI.
  ThreadScope threads(8);
  for (const auto* el : {&base, &weighted}) {
    for (const bool transpose : {false, true}) {
      const auto par = CSRGraph::from_edges(*el, transpose);
      const auto ser = CSRGraph::from_edges_serial(*el, transpose);
      EXPECT_EQ(par.offsets(), ser.offsets()) << transpose;
      EXPECT_EQ(par.targets(), ser.targets()) << transpose;
      EXPECT_EQ(par.weights(), ser.weights()) << transpose;
    }
  }
}

TEST(Csr, SerialBuildRejectsOutOfRange) {
  EdgeList el;
  el.num_vertices = 2;
  el.edges = {Edge{0, 5, 1.0f}};
  EXPECT_THROW(CSRGraph::from_edges_serial(el), EpgsError);
}

}  // namespace
}  // namespace epgs
