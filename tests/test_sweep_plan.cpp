// The plan stage of the runner, and the end-to-end zero-copy data path:
// a warm cached run must regenerate nothing yet produce records
// equivalent (modulo timings) to a cold run.
#include "harness/sweep_plan.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <tuple>

#include "harness/dataset_pipeline.hpp"
#include "harness/runner.hpp"
#include "systems/common/system.hpp"

namespace epgs::harness {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() : path_(fs::temp_directory_path() /
                    ("epgs_plan_" + std::to_string(::getpid()) + "_" +
                     std::to_string(counter_++))) {
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  [[nodiscard]] const fs::path& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  fs::path path_;
};

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.graph.kind = GraphSpec::Kind::kKronecker;
  cfg.graph.scale = 6;
  cfg.graph.edgefactor = 6;
  cfg.graph.add_weights = true;
  cfg.systems = {"GAP", "Graph500", "GraphBIG"};
  cfg.algorithms = {Algorithm::kBfs, Algorithm::kSssp};
  cfg.num_roots = 3;
  cfg.threads = 2;
  return cfg;
}

TEST(SweepPlan, EnumeratesUnitsWithKeysAndRebuildDecisions) {
  const auto cfg = small_config();
  const SweepPlan plan = plan_sweep(cfg, nullptr, {});

  EXPECT_EQ(plan.dataset, cfg.graph.name());
  EXPECT_EQ(plan.threads, 2);
  EXPECT_EQ(plan.data_path, DataPath::kInMemory);
  ASSERT_EQ(plan.systems.size(), 3u);

  const auto& gap = plan.systems[0];
  EXPECT_EQ(gap.system, "GAP");
  EXPECT_TRUE(gap.config_error.empty());
  EXPECT_TRUE(gap.rebuild_per_trial);
  EXPECT_EQ(gap.build_key, "GAP|build|-1");
  EXPECT_TRUE(gap.native_file.empty());
  ASSERT_EQ(gap.trials.size(), 6u);  // 2 algorithms x 3 roots
  EXPECT_EQ(gap.trials[0].key, "GAP|BFS|0");
  EXPECT_EQ(gap.trials[5].key, "GAP|SSSP|2");

  // Graph500 "only constructs its graph once"; BFS only.
  const auto& g500 = plan.systems[1];
  EXPECT_FALSE(g500.rebuild_per_trial);
  EXPECT_EQ(g500.trials.size(), 3u);

  // Fused read+build never rebuilds per trial.
  const auto& gbig = plan.systems[2];
  EXPECT_FALSE(gbig.separate_construction);
  EXPECT_FALSE(gbig.rebuild_per_trial);
}

TEST(SweepPlan, MarksReplayedUnitsAndBadSystems) {
  auto cfg = small_config();
  cfg.systems = {"GAP", "NoSuchSystem"};

  std::map<std::string, JournalEntry> journaled;
  journaled["GAP|BFS|1"] = {};
  journaled["GAP|build|-1"] = {};
  const SweepPlan plan = plan_sweep(cfg, nullptr, journaled);

  const auto& gap = plan.systems[0];
  EXPECT_TRUE(gap.build_replayed);
  int replayed = 0;
  for (const auto& t : gap.trials) replayed += t.replayed ? 1 : 0;
  EXPECT_EQ(replayed, 1);

  EXPECT_FALSE(plan.systems[1].config_error.empty());
  EXPECT_TRUE(plan.systems[1].trials.empty());
}

TEST(SweepPlan, NativeFileModeResolvesPerSystemPaths) {
  TempDir tmp;
  DatasetOptions opts;
  opts.cache_dir = tmp.path().string();
  const auto cfg = small_config();
  const auto prep = prepare_dataset(cfg.graph, opts);

  const SweepPlan plan = plan_sweep(cfg, &prep.entry.files, {});
  EXPECT_EQ(plan.data_path, DataPath::kNativeFile);
  for (const auto& sp : plan.systems) {
    EXPECT_FALSE(sp.native_file.empty()) << sp.system;
    EXPECT_TRUE(fs::exists(sp.native_file)) << sp.system;
  }
  // GAP reads the serialized CSR, GraphBIG its csv directory.
  EXPECT_EQ(plan.systems[0].native_file.extension(), ".wsg");
  EXPECT_TRUE(fs::is_directory(plan.systems[2].native_file));
}

// --- end-to-end acceptance: cold vs warm -------------------------------

using RecordKey =
    std::tuple<std::string, std::string, std::string, int, int, std::string,
               std::string>;

std::multiset<RecordKey> record_keys(const std::vector<RunRecord>& records) {
  std::multiset<RecordKey> keys;
  for (const auto& r : records) {
    keys.insert({r.dataset, r.system, r.algorithm, r.threads, r.trial,
                 r.phase, std::string(outcome_name(r.outcome))});
  }
  return keys;
}

TEST(ZeroCopyDataPath, WarmRunRegeneratesNothingAndMatchesColdRecords) {
  TempDir tmp;
  auto cfg = small_config();
  cfg.dataset.cache_dir = (tmp.path() / "cache").string();

  reset_pipeline_stats();
  const auto cold = run_experiment(cfg);
  EXPECT_TRUE(cold.used_dataset_pipeline);
  EXPECT_FALSE(cold.dataset_cache_hit);
  EXPECT_EQ(pipeline_stats().generator_runs, 1u);
  EXPECT_EQ(pipeline_stats().homogenize_runs, 1u);

  const auto warm = run_experiment(cfg);
  EXPECT_TRUE(warm.dataset_cache_hit);
  // The acceptance bar: the warm run re-enters neither the generator nor
  // the homogenizer...
  EXPECT_EQ(pipeline_stats().generator_runs, 1u);
  EXPECT_EQ(pipeline_stats().homogenize_runs, 1u);
  EXPECT_EQ(pipeline_stats().cache_hits, 1u);
  // ...while the phase records stay record-for-record equivalent modulo
  // timings.
  EXPECT_EQ(record_keys(cold.records), record_keys(warm.records));
  EXPECT_EQ(cold.roots, warm.roots);
}

TEST(ZeroCopyDataPath, FileReadPhaseAppearsForSeparateConstruction) {
  TempDir tmp;
  auto cfg = small_config();
  cfg.dataset.cache_dir = (tmp.path() / "cache").string();

  const auto result = run_experiment(cfg);
  // Separate-construction systems time "file read" as its own phase...
  EXPECT_EQ(result.seconds_of("GAP", phase::kFileRead).size(), 1u);
  EXPECT_EQ(result.seconds_of("Graph500", phase::kFileRead).size(), 1u);
  // ...and the bytes are the real on-disk size of the native file.
  for (const auto& r : result.records) {
    if (r.phase == phase::kFileRead) {
      EXPECT_GT(r.work.bytes_touched, 0u) << r.system;
    }
  }
  // Fused systems keep read+build as one phase (Figs 2/3 semantics).
  EXPECT_TRUE(result.seconds_of("GraphBIG", phase::kFileRead).empty());
  ASSERT_EQ(result.seconds_of("GraphBIG", phase::kBuild).size(), 1u);

  // Build sampling is unchanged from the RAM path: GAP rebuilds per
  // trial, Graph500 builds once.
  EXPECT_EQ(result.seconds_of("GAP", phase::kBuild).size(), 6u);
  EXPECT_EQ(result.seconds_of("Graph500", phase::kBuild).size(), 1u);
}

TEST(ZeroCopyDataPath, NoCacheForcesLegacyPath) {
  TempDir tmp;
  auto cfg = small_config();
  cfg.dataset.cache_dir = (tmp.path() / "cache").string();
  cfg.dataset.use_cache = false;  // what --no-cache sets

  const auto result = run_experiment(cfg);
  EXPECT_FALSE(result.used_dataset_pipeline);
  EXPECT_FALSE(fs::exists(tmp.path() / "cache"))
      << "--no-cache must not create or touch the cache dir";
  // No file-read phases: edges are staged from RAM.
  EXPECT_TRUE(result.seconds_of("GAP", phase::kFileRead).empty());
}

TEST(ZeroCopyDataPath, JournalResumeSkipsLoadAndTrials) {
  TempDir tmp;
  auto cfg = small_config();
  cfg.systems = {"GAP"};
  cfg.algorithms = {Algorithm::kBfs};
  cfg.dataset.cache_dir = (tmp.path() / "cache").string();
  cfg.supervisor.journal_path = (tmp.path() / "journal").string();

  const auto first = run_experiment(cfg);
  const auto first_keys = record_keys(first.records);

  // Resume with a complete journal: everything replays, nothing re-runs,
  // and the records match the original run exactly (same DNF markers,
  // same phases).
  cfg.supervisor.resume = true;
  const auto resumed = run_experiment(cfg);
  EXPECT_EQ(record_keys(resumed.records), first_keys);
  // The resumed run reuses the cache (hit) and replays the journaled
  // load unit rather than re-journaling it.
  EXPECT_TRUE(resumed.dataset_cache_hit);
}

}  // namespace
}  // namespace epgs::harness
