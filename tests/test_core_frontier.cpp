// Unit tests for the lock-free frontier machinery (core/frontier.hpp):
// SlidingQueue windows, LocalBuffer flush batching, the parallel
// exclusive prefix sum, bitmap compaction, and parallel_append. These
// are the tests meant to run under ThreadSanitizer (ctest -L frontier
// with -DEPGS_SANITIZE=thread) to prove the merges are race-free.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/bitmap.hpp"
#include "core/frontier.hpp"
#include "core/parallel.hpp"
#include "core/types.hpp"

namespace epgs {
namespace {

TEST(SlidingQueue, StartsEmpty) {
  SlidingQueue<vid_t> q(16);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  q.slide_window();  // sliding an empty queue stays empty
  EXPECT_TRUE(q.empty());
}

TEST(SlidingQueue, SingleElementWindow) {
  SlidingQueue<vid_t> q(4);
  q.push_back(7);
  EXPECT_TRUE(q.empty());  // not visible until slide
  q.slide_window();
  ASSERT_EQ(q.size(), 1u);
  EXPECT_EQ(*q.begin(), 7u);
  q.slide_window();  // nothing new appended -> empty window
  EXPECT_TRUE(q.empty());
}

TEST(SlidingQueue, WindowsArePublishedGenerations) {
  SlidingQueue<int> q(8);
  q.push_back(1);
  q.slide_window();
  // Append the "next frontier" while the current one is readable.
  q.push_back(2);
  q.push_back(3);
  EXPECT_EQ(q.size(), 1u);
  q.slide_window();
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(std::vector<int>(q.begin(), q.end()), (std::vector<int>{2, 3}));
}

TEST(SlidingQueue, ResetDropsEverything) {
  SlidingQueue<int> q(8);
  q.push_back(1);
  q.slide_window();
  q.reset();
  EXPECT_TRUE(q.empty());
  q.push_back(5);
  q.slide_window();
  EXPECT_EQ(*q.begin(), 5);
}

TEST(SlidingQueue, TakeAppendedReturnsAllAppends) {
  SlidingQueue<int> q(8);
  q.push_back(3);
  q.push_back(1);
  q.slide_window();
  q.push_back(2);
  auto all = q.take_appended();
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(q.empty());
}

TEST(LocalBuffer, FlushesOnDestruction) {
  SlidingQueue<vid_t> q(100);
  {
    LocalBuffer<vid_t> lb(q);
    for (vid_t v = 0; v < 100; ++v) lb.push_back(v);
    EXPECT_EQ(lb.pending(), 100u);
  }
  q.slide_window();
  EXPECT_EQ(q.size(), 100u);
}

TEST(LocalBuffer, FlushesWhenFull) {
  // Capacity 4 forces internal flushes long before the destructor.
  SlidingQueue<vid_t> q(100);
  LocalBuffer<vid_t, 4> lb(q);
  for (vid_t v = 0; v < 10; ++v) lb.push_back(v);
  EXPECT_EQ(lb.pending(), 2u);  // 8 already flushed
  lb.flush();
  q.slide_window();
  std::vector<vid_t> got(q.begin(), q.end());
  std::sort(got.begin(), got.end());
  std::vector<vid_t> want(10);
  std::iota(want.begin(), want.end(), 0u);
  EXPECT_EQ(got, want);
}

// Per-thread producer body for ConcurrentProducersLoseNothing. Fully
// TSan-instrumented; the region wrapper below is not (OpenMP closure
// handoff — see core/parallel.hpp). The OmpHbEdge calls re-declare the
// region's fork/join edges, which TSan cannot see through
// uninstrumented libgomp.
EPGS_TSAN_NOINLINE void concurrent_produce_body(SlidingQueue<vid_t>& q,
                                                vid_t n, OmpHbEdge& hb_fork,
                                                OmpHbEdge& hb_join) {
  hb_fork.acquire();
  {
    LocalBuffer<vid_t, 64> lb(q);
#pragma omp for schedule(dynamic, 37) nowait
    for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); ++v) {
      lb.push_back(static_cast<vid_t>(v));
    }
  }  // LocalBuffer destructor flushes before the join edge
  hb_join.release();
}

EPGS_NO_SANITIZE_THREAD void run_concurrent_producers(SlidingQueue<vid_t>& q,
                                                      vid_t n) {
  OmpHbEdge hb_fork, hb_join;
  hb_fork.release();
#pragma omp parallel
  concurrent_produce_body(q, n, hb_fork, hb_join);
  hb_join.acquire();
}

TEST(SlidingQueue, ConcurrentProducersLoseNothing) {
  // The BFS merge pattern: many threads, small buffers, one queue.
  constexpr vid_t kN = 100000;
  SlidingQueue<vid_t> q(kN);
  run_concurrent_producers(q, kN);
  q.slide_window();
  ASSERT_EQ(q.size(), static_cast<std::size_t>(kN));
  std::vector<vid_t> got(q.begin(), q.end());
  std::sort(got.begin(), got.end());
  for (vid_t v = 0; v < kN; ++v) {
    ASSERT_EQ(got[v], v) << "lost or duplicated vertex";
  }
}

TEST(ParallelPrefixSum, MatchesSerialOnEdgeCases) {
  const std::vector<std::size_t> sizes = {
      0, 1, 2, 63, 64, 65, 1000,
      kParallelScanThreshold - 1, kParallelScanThreshold,
      kParallelScanThreshold + 1, 3 * kParallelScanThreshold + 17};
  for (const std::size_t n : sizes) {
    std::vector<eid_t> in(n);
    for (std::size_t i = 0; i < n; ++i) in[i] = (i * 7 + 3) % 11;
    std::vector<eid_t> want, got;
    const eid_t want_total = exclusive_prefix_sum(in, want);
    const eid_t got_total = parallel_exclusive_prefix_sum(in, got);
    EXPECT_EQ(got_total, want_total) << "n=" << n;
    EXPECT_EQ(got, want) << "n=" << n;
  }
}

TEST(ParallelPrefixSum, SingleElement) {
  std::vector<eid_t> in{42};
  std::vector<eid_t> out;
  EXPECT_EQ(parallel_exclusive_prefix_sum(in, out), 42u);
  EXPECT_EQ(out, (std::vector<eid_t>{0, 42}));
}

TEST(ParallelPrefixSum, Empty) {
  std::vector<eid_t> in;
  std::vector<eid_t> out;
  EXPECT_EQ(parallel_exclusive_prefix_sum(in, out), 0u);
  EXPECT_EQ(out, (std::vector<eid_t>{0}));
}

TEST(BitmapToQueue, EmptyBitmap) {
  Bitmap bm(256);
  SlidingQueue<vid_t> q(256);
  EXPECT_EQ(bitmap_to_queue(bm, q), 0u);
  q.slide_window();
  EXPECT_TRUE(q.empty());
}

TEST(BitmapToQueue, SingleBit) {
  Bitmap bm(256);
  bm.set(129);
  SlidingQueue<vid_t> q(1);
  EXPECT_EQ(bitmap_to_queue(bm, q), 1u);
  q.slide_window();
  ASSERT_EQ(q.size(), 1u);
  EXPECT_EQ(*q.begin(), 129u);
}

TEST(BitmapToQueue, ProducesSortedVerticesAcrossWordBoundaries) {
  constexpr std::size_t kN = 100000;  // > one parallel chunk of words
  Bitmap bm(kN);
  std::vector<vid_t> want;
  for (std::size_t v = 0; v < kN; ++v) {
    if (v % 7 == 0 || v % 64 == 63) {
      bm.set(v);
      want.push_back(static_cast<vid_t>(v));
    }
  }
  SlidingQueue<vid_t> q(want.size());
  EXPECT_EQ(bitmap_to_queue(bm, q), want.size());
  q.slide_window();
  EXPECT_EQ(std::vector<vid_t>(q.begin(), q.end()), want);
}

TEST(ParallelAppend, EmptyParts) {
  std::vector<int> out{9};
  parallel_append(out, {});
  EXPECT_EQ(out, (std::vector<int>{9}));
  parallel_append(out, {{}, {}, {}});
  EXPECT_EQ(out, (std::vector<int>{9}));
}

TEST(ParallelAppend, DeterministicThreadOrder) {
  std::vector<int> out{0};
  parallel_append(out, {{1, 2}, {}, {3}, {4, 5, 6}});
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4, 5, 6}));
}

TEST(ParallelAppend, LargePartsSurviveRoundTrip) {
  const auto nt = static_cast<std::size_t>(max_threads());
  std::vector<std::vector<int>> parts(std::max<std::size_t>(nt, 4));
  std::size_t total = 0;
  for (std::size_t p = 0; p < parts.size(); ++p) {
    parts[p].resize(10000 + p * 31);
    std::iota(parts[p].begin(), parts[p].end(), static_cast<int>(total));
    total += parts[p].size();
  }
  std::vector<int> out;
  parallel_append(out, parts);
  ASSERT_EQ(out.size(), total);
  for (std::size_t i = 0; i < total; ++i) {
    ASSERT_EQ(out[i], static_cast<int>(i));
  }
}

}  // namespace
}  // namespace epgs
