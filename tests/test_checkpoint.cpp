// Mid-trial checkpoint/restore: the snapshot format survives round trips
// and rejects corruption; every system that registers iteration state
// produces bit-identical results when killed mid-kernel and resumed,
// demonstrated with deterministic cancel-at-iteration fault injection
// (and one real SIGKILL under fork isolation).
#include "core/checkpoint.hpp"

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/cancellation.hpp"
#include "core/error.hpp"
#include "core/parallel.hpp"
#include "harness/supervisor.hpp"
#include "systems/common/fault_injection.hpp"
#include "systems/common/registry.hpp"
#include "test_util.hpp"

namespace epgs {
namespace {

namespace fs = std::filesystem;

// --- serialization -------------------------------------------------------

TEST(Checkpoint, Crc32MatchesKnownVectorAndChains) {
  // The zlib/IEEE check value for "123456789".
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  const std::uint32_t whole = crc32("abcdef", 6);
  EXPECT_EQ(crc32("def", 3, crc32("abc", 3)), whole);
}

TEST(Checkpoint, StateRoundTripsTaggedFields) {
  StateWriter w;
  w.put_u64(42);
  w.put_i64(-7);
  w.put_f64(0.15);
  w.put_str("bfs");
  w.put_vec(std::vector<double>{1.5, 2.5});
  w.put_vec(std::vector<vid_t>{});

  StateReader r(w.buffer());
  EXPECT_EQ(r.get_u64(), 42u);
  EXPECT_EQ(r.get_i64(), -7);
  EXPECT_EQ(r.get_f64(), 0.15);
  EXPECT_EQ(r.get_str(), "bfs");
  EXPECT_EQ(r.get_vec<double>(), (std::vector<double>{1.5, 2.5}));
  EXPECT_TRUE(r.get_vec<vid_t>().empty());
  EXPECT_TRUE(r.at_end());
}

TEST(Checkpoint, StateReaderRejectsMismatches) {
  StateWriter w;
  w.put_u64(1);
  w.put_vec(std::vector<double>{1.0});
  {
    StateReader r(w.buffer());
    EXPECT_THROW((void)r.get_f64(), EpgsError);  // tag mismatch
  }
  {
    StateReader r(w.buffer());
    (void)r.get_u64();
    EXPECT_THROW((void)r.get_vec<float>(), EpgsError);  // element size
  }
  {
    StateReader r(std::string_view(w.buffer()).substr(0, 4));
    EXPECT_THROW((void)r.get_u64(), EpgsError);  // truncated
  }
}

// --- session persistence -------------------------------------------------

class CheckpointDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("epgs_ckpt_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    fault::disarm_all();
    fs::remove_all(dir_);
  }

  [[nodiscard]] CheckpointConfig config(const std::string& key = "u|0",
                                        int every = 1) const {
    CheckpointConfig cfg;
    cfg.dir = dir_.string();
    cfg.unit_key = key;
    cfg.fingerprint = "fp";
    cfg.every_iterations = every;
    return cfg;
  }

  fs::path dir_;
};

/// A toy kernel state: a counter and a vector.
struct ToyState final : Checkpointable {
  std::uint64_t sum = 0;
  std::vector<double> vals;

  void save_state(StateWriter& w) const override {
    w.put_u64(sum);
    w.put_vec(vals);
  }
  void restore_state(StateReader& r) override {
    sum = r.get_u64();
    vals = r.get_vec<double>();
  }
};

TEST_F(CheckpointDir, SnapshotRoundTripsAcrossSessions) {
  {
    CheckpointSession s(config());
    ToyState state;
    EXPECT_EQ(s.begin("toy", state), 0u);  // fresh start
    state.sum = 10;
    state.vals = {1.0, 2.0};
    EXPECT_TRUE(s.tick(3));  // cadence 1: saves at iteration 3
    EXPECT_EQ(s.saves(), 1);
    s.detach();  // simulate the kernel dying without end()
  }
  CheckpointSession s(config());
  ToyState state;
  EXPECT_EQ(s.begin("toy", state), 3u);
  EXPECT_EQ(s.resumed_from(), 3);
  EXPECT_EQ(state.sum, 10u);
  EXPECT_EQ(state.vals, (std::vector<double>{1.0, 2.0}));
  EXPECT_TRUE(s.warning().empty());
}

TEST_F(CheckpointDir, EndDeletesTheSnapshot) {
  CheckpointSession s(config());
  ToyState state;
  (void)s.begin("toy", state);
  EXPECT_TRUE(s.tick(1));
  EXPECT_TRUE(s.snapshot_exists());
  s.end();
  EXPECT_FALSE(s.snapshot_exists());
}

TEST_F(CheckpointDir, CadenceSkipsIntermediateIterations) {
  CheckpointSession s(config("u|0", /*every=*/3));
  ToyState state;
  (void)s.begin("toy", state);
  EXPECT_FALSE(s.tick(0));  // nothing completed: never save
  EXPECT_FALSE(s.tick(1));
  EXPECT_FALSE(s.tick(2));
  EXPECT_TRUE(s.tick(3));
  EXPECT_FALSE(s.tick(4));
  EXPECT_TRUE(s.tick(6));
  EXPECT_EQ(s.saves(), 2);
  EXPECT_EQ(s.last_saved_iteration(), 6u);
}

TEST_F(CheckpointDir, SaveNowSkipsWhenIterationAlreadyOnDisk) {
  CheckpointSession s(config());
  ToyState state;
  (void)s.begin("toy", state);
  EXPECT_TRUE(s.tick(2));
  s.save_now();  // iteration 2 already durable: no second write
  EXPECT_EQ(s.saves(), 1);
}

TEST_F(CheckpointDir, CorruptSnapshotInvalidatedWithWarning) {
  {
    CheckpointSession s(config());
    ToyState state;
    (void)s.begin("toy", state);
    state.sum = 5;
    EXPECT_TRUE(s.tick(2));
    s.detach();
  }
  const fs::path p = CheckpointSession::path_for(dir_, "u|0");
  ASSERT_TRUE(fs::exists(p));
  {
    // Flip one payload byte: the CRC must catch it.
    std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-5, std::ios::end);
    f.put('\xFF');
  }
  CheckpointSession s(config());
  ToyState state;
  EXPECT_EQ(s.begin("toy", state), 0u);  // full restart
  EXPECT_EQ(state.sum, 0u);              // nothing restored
  EXPECT_FALSE(s.warning().empty());
  EXPECT_FALSE(fs::exists(p)) << "invalid snapshot must be deleted";
}

TEST_F(CheckpointDir, TornSnapshotInvalidated) {
  {
    CheckpointSession s(config());
    ToyState state;
    (void)s.begin("toy", state);
    state.vals.assign(64, 1.0);
    EXPECT_TRUE(s.tick(1));
    s.detach();
  }
  const fs::path p = CheckpointSession::path_for(dir_, "u|0");
  fs::resize_file(p, fs::file_size(p) / 2);
  CheckpointSession s(config());
  ToyState state;
  EXPECT_EQ(s.begin("toy", state), 0u);
  EXPECT_FALSE(s.warning().empty());
}

TEST_F(CheckpointDir, FingerprintMismatchForcesFullRestart) {
  {
    CheckpointSession s(config());
    ToyState state;
    (void)s.begin("toy", state);
    EXPECT_TRUE(s.tick(4));
    s.detach();
  }
  auto cfg = config();
  cfg.fingerprint = "different-experiment";
  CheckpointSession s(cfg);
  ToyState state;
  EXPECT_EQ(s.begin("toy", state), 0u);
  EXPECT_NE(s.warning().find("fingerprint"), std::string::npos)
      << "warning was: " << s.warning();
}

TEST_F(CheckpointDir, StageMismatchForcesFullRestart) {
  {
    CheckpointSession s(config());
    ToyState state;
    (void)s.begin("pagerank", state);
    EXPECT_TRUE(s.tick(4));
    s.detach();
  }
  CheckpointSession s(config());
  ToyState state;
  EXPECT_EQ(s.begin("bfs", state), 0u);
  EXPECT_FALSE(s.warning().empty());
}

// --- torn-publish window -------------------------------------------------
//
// A process can die *between* the durable tmp write and the rename that
// publishes it (crash, SIGKILL, power cut). The invariant: the snapshot
// path afterwards holds either nothing or the previous valid snapshot —
// never a torn frame that peek_iteration() accepts. A real SIGKILL in a
// fork child exercises the exact window via the publish hook.

TEST_F(CheckpointDir, KillAtFirstPublishLeavesNoSnapshot) {
  const auto cfg = config("pub|1");
  const pid_t pid = ::fork();
  if (pid == 0) {
    fault::arm_kill_at_publish({1, {}});
    CheckpointSession s(cfg);
    ToyState state;
    (void)s.begin("toy", state);
    state.sum = 1;
    (void)s.tick(1);  // dies between the tmp fsync and the rename
    ::_exit(0);       // unreachable: the hook SIGKILLed us
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  const fs::path p = CheckpointSession::path_for(dir_, "pub|1");
  EXPECT_EQ(CheckpointSession::peek_iteration(p), -1)
      << "the unpublished tmp write must not be visible as a snapshot";
  CheckpointSession s(cfg);
  ToyState state;
  EXPECT_EQ(s.begin("toy", state), 0u) << "restart must be from scratch";
}

TEST_F(CheckpointDir, KillAtSecondPublishKeepsPriorValidSnapshot) {
  const auto cfg = config("pub|2");
  const pid_t pid = ::fork();
  if (pid == 0) {
    fault::arm_kill_at_publish({2, {}});
    CheckpointSession s(cfg);
    ToyState state;
    (void)s.begin("toy", state);
    state.sum = 1;
    state.vals = {1.5};
    (void)s.tick(1);  // publish 1 lands
    state.sum = 99;
    state.vals = {9.9, 9.9};
    (void)s.tick(2);  // dies in the window: iteration 2 never publishes
    ::_exit(0);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  const fs::path p = CheckpointSession::path_for(dir_, "pub|2");
  ASSERT_EQ(CheckpointSession::peek_iteration(p), 1)
      << "the previous published snapshot must survive the torn publish";
  CheckpointSession s(cfg);
  ToyState state;
  EXPECT_EQ(s.begin("toy", state), 1u);
  EXPECT_EQ(state.sum, 1u);
  EXPECT_EQ(state.vals, (std::vector<double>{1.5}))
      << "restored state must be the iteration-1 frame, not the torn one";
}

TEST_F(CheckpointDir, PathForSanitizesAndDisambiguatesKeys) {
  const auto a = CheckpointSession::path_for(dir_, "GAP|BFS|0");
  const auto b = CheckpointSession::path_for(dir_, "GAP|BFS/0");
  EXPECT_NE(a, b) << "different keys must map to different files";
  EXPECT_EQ(a.parent_path(), dir_);
  EXPECT_EQ(a.extension(), ".ckpt");
  EXPECT_EQ(a.filename().string().find('|'), std::string::npos);
  EXPECT_EQ(b.filename().string().find('/'), std::string::npos);
}

// --- kill/resume equivalence across systems ------------------------------
//
// The correctness bar: a kernel cancelled at a deterministic iteration
// boundary (a stand-in for SIGKILL/timeout — the snapshot written is the
// same) and then resumed must produce bit-identical output and work
// counters to an uninterrupted run.

/// Run `alg` on a fresh instance of `system` with no interference.
template <typename Alg>
auto run_uninterrupted(const std::string& system, const EdgeList& el,
                       Alg&& alg) {
  auto sys = make_system(system);
  sys->set_edges(el);
  sys->build();
  auto result = alg(*sys);
  const auto& entry = sys->log().entries().back();
  return std::make_pair(std::move(result), entry.work);
}

/// Cancel the kernel at `kill_iter`, then resume it from the snapshot on
/// a fresh instance; returns the resumed result + work counters and
/// asserts the resume actually happened.
template <typename Alg>
auto run_killed_and_resumed(const std::string& system, const EdgeList& el,
                            const CheckpointConfig& cfg,
                            std::uint64_t kill_iter, Alg&& alg) {
  {
    auto sys = make_system(system);
    sys->set_edges(el);
    sys->build();
    CancellationToken token;
    sys->set_cancellation(&token);
    CheckpointSession session(cfg);
    sys->set_checkpoint_session(&session);
    fault::arm_cancel_at_iteration({system, kill_iter});
    EXPECT_THROW((void)alg(*sys), CancelledError);
    fault::disarm_cancel_at_iteration();
    session.detach();
    EXPECT_TRUE(session.snapshot_exists())
        << system << " left no snapshot behind";
  }
  auto sys = make_system(system);
  sys->set_edges(el);
  sys->build();
  CheckpointSession session(cfg);
  sys->set_checkpoint_session(&session);
  auto result = alg(*sys);
  EXPECT_EQ(session.resumed_from(),
            static_cast<std::int64_t>(kill_iter))
      << system << " did not resume from the snapshot";
  EXPECT_FALSE(session.snapshot_exists())
      << system << " must delete the snapshot after completing";
  const auto& entry = sys->log().entries().back();
  return std::make_pair(std::move(result), entry.work);
}

class KillResume : public CheckpointDir {
 protected:
  void expect_same_work(const WorkStats& a, const WorkStats& b,
                        const std::string& system) {
    EXPECT_EQ(a.edges_processed, b.edges_processed) << system;
    EXPECT_EQ(a.vertex_updates, b.vertex_updates) << system;
    EXPECT_EQ(a.bytes_touched, b.bytes_touched) << system;
  }
};

TEST_F(KillResume, PageRankBitIdenticalOnEverySystem) {
  const EdgeList el = test::line_graph(96);
  const PageRankParams params;
  const auto alg = [&](System& s) { return s.pagerank(params); };
  for (const std::string system :
       {"GAP", "Ligra", "GraphMat", "GraphBIG", "PowerGraph"}) {
    const auto [base, base_work] = run_uninterrupted(system, el, alg);
    ASSERT_GT(base.iterations, 4) << system << ": graph converges too "
                                     "fast to test a mid-kernel kill";
    const auto [resumed, resumed_work] = run_killed_and_resumed(
        system, el, config("pr|" + system), /*kill_iter=*/3, alg);
    EXPECT_EQ(resumed.iterations, base.iterations) << system;
    ASSERT_EQ(resumed.rank.size(), base.rank.size()) << system;
    EXPECT_EQ(std::memcmp(resumed.rank.data(), base.rank.data(),
                          base.rank.size() * sizeof(double)),
              0)
        << system << ": resumed PageRank is not bit-identical";
    expect_same_work(base_work, resumed_work, system);
  }
}

TEST_F(KillResume, BfsBitIdenticalOnFrontierSystems) {
  // Single-threaded: parent selection under concurrent CAS is tie-broken
  // by timing at >1 thread, so only the 1-thread tree is deterministic.
  ThreadScope scope(1);
  const EdgeList el = test::line_graph(64);
  const auto alg = [](System& s) { return s.bfs(0); };
  for (const std::string system : {"GAP", "Graph500", "Ligra"}) {
    const auto [base, base_work] = run_uninterrupted(system, el, alg);
    const auto [resumed, resumed_work] = run_killed_and_resumed(
        system, el, config("bfs|" + system), /*kill_iter=*/3, alg);
    EXPECT_EQ(resumed.parent, base.parent)
        << system << ": resumed BFS parent tree differs";
    expect_same_work(base_work, resumed_work, system);
  }
}

TEST_F(KillResume, SsspBitIdenticalOnGap) {
  ThreadScope scope(1);
  const EdgeList el = test::line_graph(64, /*weighted=*/true);
  const auto alg = [](System& s) { return s.sssp(0); };
  const auto [base, base_work] = run_uninterrupted("GAP", el, alg);
  const auto [resumed, resumed_work] = run_killed_and_resumed(
      "GAP", el, config("sssp|GAP"), /*kill_iter=*/2, alg);
  EXPECT_EQ(std::memcmp(resumed.dist.data(), base.dist.data(),
                        base.dist.size() * sizeof(weight_t)),
            0)
      << "resumed SSSP distances are not bit-identical";
  expect_same_work(base_work, resumed_work, "GAP");
}

TEST_F(KillResume, CancelWithoutSessionStillJustCancels) {
  // The fault hooks must not require a checkpoint session.
  auto sys = make_system("GAP");
  sys->set_edges(test::line_graph(64));
  sys->build();
  CancellationToken token;
  sys->set_cancellation(&token);
  fault::arm_cancel_at_iteration({"GAP", 2});
  EXPECT_THROW((void)sys->pagerank(), CancelledError);
  fault::disarm_cancel_at_iteration();
}

// --- supervised retry from a snapshot ------------------------------------

TEST_F(KillResume, SupervisorRetriesSigkilledChildFromSnapshot) {
  // The production failure mode end to end: the fork child is SIGKILLed
  // the moment the snapshot covering iteration 3 is durable; the retry
  // (granted because the snapshot exists) resumes and succeeds.
  const EdgeList el = test::line_graph(96);
  harness::SupervisorOptions opts;
  opts.isolate = true;
  opts.max_retries = 1;
  opts.backoff_base_seconds = 0.0;
  opts.backoff_max_seconds = 0.0;
  CheckpointSession session(config("kill|GAP"));
  fault::arm_kill_at_checkpoint({"GAP", 3});
  Xoshiro256 rng(1);
  const harness::TrialReport rep = harness::supervise_unit(
      [&](CancellationToken& token) {
        auto sys = make_system("GAP");
        sys->set_edges(el);
        sys->build();
        sys->set_cancellation(&token);
        sys->set_checkpoint_session(&session);
        (void)sys->pagerank();
        sys->set_checkpoint_session(nullptr);
        return std::vector<harness::RunRecord>{};
      },
      opts, rng, &session);
  fault::disarm_kill_at_checkpoint();
  EXPECT_EQ(rep.outcome, Outcome::kSuccess) << rep.message;
  EXPECT_EQ(rep.attempts, 2);
  EXPECT_EQ(rep.resumed_from_iter, 3);
}

TEST_F(KillResume, NoSnapshotMeansNoRetryForCrashes) {
  harness::SupervisorOptions opts;
  opts.max_retries = 2;
  CheckpointSession session(config("nosnap"));
  Xoshiro256 rng(1);
  int calls = 0;
  const harness::TrialReport rep = harness::supervise_unit(
      [&](CancellationToken&) -> std::vector<harness::RunRecord> {
        ++calls;
        throw EpgsError("boom");
      },
      opts, rng, &session);
  EXPECT_EQ(rep.outcome, Outcome::kCrash);
  EXPECT_EQ(calls, 1) << "a crash without a snapshot must not retry";
}

}  // namespace
}  // namespace epgs
