// The epg tool: arg parsing and all five pipeline subcommands, driven
// in-process through cli::dispatch.
#include "cli/commands.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "cli/args.hpp"
#include "core/error.hpp"
#include "graph/snap_io.hpp"
#include "harness/runner.hpp"
#include "systems/common/fault_injection.hpp"

namespace epgs::cli {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() : path_(fs::temp_directory_path() /
                    ("epgs_cli_" + std::to_string(::getpid()) + "_" +
                     std::to_string(counter_++))) {
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  [[nodiscard]] const fs::path& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  fs::path path_;
};

int run_cli(const std::vector<std::string>& argv, std::string* out = nullptr) {
  std::ostringstream o, e;
  const int rc = dispatch(argv, o, e);
  if (out != nullptr) *out = o.str() + e.str();
  return rc;
}

TEST(CliArgs, ParseOptionsFlagsPositional) {
  const auto args = Args::parse(
      {"--scale", "12", "--validate", "pos1", "--systems", "GAP,GraphMat",
       "pos2"});
  EXPECT_EQ(args.get_int("scale", 0), 12);
  EXPECT_TRUE(args.has("validate"));
  EXPECT_FALSE(args.has("threads"));
  EXPECT_EQ(args.get_list("systems"),
            (std::vector<std::string>{"GAP", "GraphMat"}));
  EXPECT_EQ(args.positional(), (std::vector<std::string>{"pos1", "pos2"}));
}

TEST(CliArgs, TypedGettersValidate) {
  const auto args = Args::parse({"--scale", "abc", "--frac", "0.5"});
  EXPECT_THROW(args.get_int("scale", 0), EpgsError);
  EXPECT_DOUBLE_EQ(args.get_double("frac", 0.0), 0.5);
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_THROW(args.expect_known({"scale"}), EpgsError);
  EXPECT_NO_THROW(args.expect_known({"scale", "frac"}));
}

TEST(CliArgs, EmptyListWhenAbsent) {
  const auto args = Args::parse({});
  EXPECT_TRUE(args.get_list("systems").empty());
}

TEST(Cli, UnknownCommandFails) {
  std::string out;
  EXPECT_NE(run_cli({"frobnicate"}, &out), 0);
  EXPECT_NE(out.find("unknown command"), std::string::npos);
  EXPECT_NE(run_cli({}, &out), 0);
}

TEST(Cli, HelpSucceeds) {
  std::string out;
  EXPECT_EQ(run_cli({"help"}, &out), 0);
  EXPECT_NE(out.find("generate"), std::string::npos);
  EXPECT_NE(out.find("analyze"), std::string::npos);
}

TEST(Cli, UnknownOptionRejected) {
  std::string out;
  EXPECT_NE(run_cli({"generate", "--scael", "8"}, &out), 0);
  EXPECT_NE(out.find("--scael"), std::string::npos);
}

TEST(Cli, GenerateWritesSnap) {
  TempDir dir;
  const auto out_path = (dir.path() / "g.snap").string();
  std::string out;
  ASSERT_EQ(run_cli({"generate", "--kind", "kron", "--scale", "7",
                     "--edgefactor", "8", "--out", out_path},
                    &out),
            0);
  const auto el = read_snap_file(out_path);
  EXPECT_EQ(el.num_vertices, 128u);
  EXPECT_GT(el.num_edges(), 0u);
  EXPECT_NE(out.find("128 vertices"), std::string::npos);
}

TEST(Cli, GenerateWeighted) {
  TempDir dir;
  const auto out_path = (dir.path() / "w.snap").string();
  ASSERT_EQ(run_cli({"generate", "--kind", "kron", "--scale", "6",
                     "--weights", "--max-weight", "9", "--out", out_path}),
            0);
  const auto el = read_snap_file(out_path);
  ASSERT_TRUE(el.weighted);
  for (const auto& e : el.edges) {
    EXPECT_LE(e.w, 9.0f);
  }
}

TEST(Cli, HomogenizeProducesSevenFormats) {
  TempDir dir;
  const auto snap = (dir.path() / "g.snap").string();
  ASSERT_EQ(run_cli({"generate", "--kind", "kron", "--scale", "6", "--out",
                     snap}),
            0);
  std::string out;
  ASSERT_EQ(run_cli({"homogenize", "--in", snap, "--out",
                     (dir.path() / "formats").string()},
                    &out),
            0);
  EXPECT_NE(out.find("7 formats"), std::string::npos);
  EXPECT_TRUE(fs::exists(dir.path() / "formats" / "g.mtx"));
  EXPECT_TRUE(fs::exists(dir.path() / "formats" / "g.g500"));
}

TEST(Cli, FullPipelineRunParseAnalyze) {
  TempDir dir;
  const auto csv1 = (dir.path() / "direct.csv").string();
  const auto logdir = (dir.path() / "logs").string();

  // Phase 3: run, writing both the CSV and the raw logs.
  std::string out;
  ASSERT_EQ(run_cli({"run", "--kind", "kron", "--scale", "7",
                     "--systems", "GAP,Graph500", "--algorithms", "BFS",
                     "--roots", "3", "--threads", "1", "--validate",
                     "--no-reconstruct", "--csv", csv1, "--logdir",
                     logdir},
                    &out),
            0)
      << out;
  EXPECT_TRUE(fs::exists(dir.path() / "logs" / "GAP.log"));

  // Phase 4: independently parse the raw logs into a second CSV.
  const auto csv2 = (dir.path() / "parsed.csv").string();
  ASSERT_EQ(run_cli({"parse", "--logdir", logdir, "--csv", csv2,
                     "--threads", "1"},
                    &out),
            0)
      << out;

  // Both CSVs must contain the same BFS algorithm records.
  std::ifstream f1(csv1), f2(csv2);
  std::stringstream b1, b2;
  b1 << f1.rdbuf();
  b2 << f2.rdbuf();
  const auto recs1 = harness::records_from_csv(b1.str());
  const auto recs2 = harness::records_from_csv(b2.str());
  auto count_alg = [](const std::vector<harness::RunRecord>& rs) {
    int n = 0;
    for (const auto& r : rs) {
      if (r.phase == phase::kAlgorithm) ++n;
    }
    return n;
  };
  EXPECT_EQ(count_alg(recs1), 6);  // 2 systems x 3 roots
  EXPECT_EQ(count_alg(recs2), 6);

  // Phase 5: analyze the parsed CSV and emit plot data.
  const auto prefix = (dir.path() / "report").string();
  ASSERT_EQ(run_cli({"analyze", "--csv", csv2, "--out", prefix}, &out), 0)
      << out;
  EXPECT_NE(out.find("GAP"), std::string::npos);
  EXPECT_TRUE(fs::exists(prefix + ".dat"));
  EXPECT_TRUE(fs::exists(prefix + ".R"));
}

TEST(Cli, ParseRequiresLogdir) {
  std::string out;
  EXPECT_NE(run_cli({"parse"}, &out), 0);
  EXPECT_NE(out.find("--logdir"), std::string::npos);
}

TEST(Cli, AnalyzeMissingCsvFails) {
  std::string out;
  EXPECT_NE(run_cli({"analyze", "--csv", "/nonexistent.csv"}, &out), 0);
}

TEST(Cli, TuneReportsBestParameters) {
  std::string out;
  ASSERT_EQ(run_cli({"tune", "--kind", "kron", "--scale", "7", "--roots",
                     "2"},
                    &out),
            0)
      << out;
  EXPECT_NE(out.find("best alpha="), std::string::npos);
  EXPECT_NE(out.find("best delta="), std::string::npos);
}

TEST(Cli, GraphalyticsCommandRendersTableAndHtml) {
  TempDir dir;
  const auto html = (dir.path() / "report.html").string();
  std::string out;
  ASSERT_EQ(run_cli({"graphalytics", "--kind", "kron", "--scale", "7",
                     "--systems", "GraphMat,GraphBIG", "--algorithms",
                     "WCC", "--threads", "1", "--workdir",
                     (dir.path() / "work").string(), "--html", html},
                    &out),
            0)
      << out;
  EXPECT_NE(out.find("GraphMat"), std::string::npos);
  EXPECT_NE(out.find("WCC"), std::string::npos);
  EXPECT_TRUE(fs::exists(html));
}

TEST(Cli, PredictCommandAnswersFeasibility) {
  std::string out;
  ASSERT_EQ(run_cli({"predict", "--system", "GAP", "--algorithm", "BFS",
                     "--scale", "20", "--probe-small", "7",
                     "--probe-large", "8", "--time-limit", "0.000001",
                     "--memory-limit-mib", "1"},
                    &out),
            0)
      << out;
  EXPECT_NE(out.find("predicted"), std::string::npos);
  EXPECT_NE(out.find("feasible"), std::string::npos);
  EXPECT_NE(out.find("NO"), std::string::npos)
      << "scale 20 cannot fit a microsecond/1MiB budget";
}

TEST(Cli, StatsRendersDatasetSummary) {
  std::string out;
  ASSERT_EQ(run_cli({"stats", "--kind", "kron", "--scale", "7"}, &out), 0)
      << out;
  EXPECT_NE(out.find("kron-s7"), std::string::npos);
  EXPECT_NE(out.find("vertices            128"), std::string::npos);
  EXPECT_NE(out.find("density"), std::string::npos);
}

TEST(Cli, StatsOnSnapFile) {
  TempDir dir;
  const auto snap = (dir.path() / "g.snap").string();
  ASSERT_EQ(run_cli({"generate", "--kind", "kron", "--scale", "6",
                     "--weights", "--out", snap}),
            0);
  std::string out;
  ASSERT_EQ(run_cli({"stats", "--kind", "snap", "--graph", snap,
                     "--no-symmetrize", "--no-dedupe"},
                    &out),
            0)
      << out;
  EXPECT_NE(out.find("weights"), std::string::npos);
}

TEST(Cli, RunExitsNonzeroOnDnfUnlessAllowed) {
  TempDir dir;
  const auto csv = (dir.path() / "dnf.csv").string();
  const std::vector<std::string> argv = {
      "run",     "--kind",    "kron",  "--scale",   "6",
      "--systems", "GAP",     "--algorithms", "BFS",
      "--roots", "2",         "--threads", "1",
      "--csv",   csv};

  std::string out;
  {
    fault::Scoped fault({.system = "GAP",
                         .kind = fault::Kind::kError,
                         .max_fires = 1,
                         .phase = "bfs"});
    EXPECT_EQ(run_cli(argv, &out), 3)
        << "a sweep with DNFs must not exit 0: " << out;
  }
  EXPECT_NE(out.find("did not finish"), std::string::npos);
  EXPECT_NE(out.find("outcomes:"), std::string::npos);
  EXPECT_NE(out.find("crash"), std::string::npos);

  // Same sweep, same fault, --allow-dnf: partial data is accepted.
  {
    fault::Scoped fault({.system = "GAP",
                         .kind = fault::Kind::kError,
                         .max_fires = 1,
                         .phase = "bfs"});
    auto tolerant = argv;
    tolerant.emplace_back("--allow-dnf");
    EXPECT_EQ(run_cli(tolerant, &out), 0) << out;
  }
  EXPECT_NE(out.find("tolerated by --allow-dnf"), std::string::npos);

  // The CSV still records the DNF row for analysis.
  std::ifstream f(csv);
  std::stringstream buf;
  buf << f.rdbuf();
  const auto recs = harness::records_from_csv(buf.str());
  bool has_crash = false;
  for (const auto& r : recs) has_crash |= r.outcome == Outcome::kCrash;
  EXPECT_TRUE(has_crash);
}

TEST(Cli, RunJournalAndResumeFlags) {
  TempDir dir;
  const auto csv = (dir.path() / "r.csv").string();
  const auto journal = (dir.path() / "j.txt").string();
  std::string out;
  ASSERT_EQ(run_cli({"run", "--kind", "kron", "--scale", "6", "--systems",
                     "GAP", "--algorithms", "BFS", "--roots", "2",
                     "--threads", "1", "--csv", csv, "--journal", journal},
                    &out),
            0)
      << out;
  ASSERT_TRUE(fs::exists(journal));
  ASSERT_EQ(run_cli({"run", "--kind", "kron", "--scale", "6", "--systems",
                     "GAP", "--algorithms", "BFS", "--roots", "2",
                     "--threads", "1", "--csv", csv, "--journal", journal,
                     "--resume"},
                    &out),
            0)
      << out;
  // --resume without --journal is a usage error.
  EXPECT_NE(run_cli({"run", "--kind", "kron", "--scale", "6", "--systems",
                     "GAP", "--algorithms", "BFS", "--roots", "1",
                     "--threads", "1", "--csv", csv, "--resume"},
                    &out),
            0);
  EXPECT_NE(out.find("--resume requires --journal"), std::string::npos);
}

TEST(Cli, RunSsspAutoWeights) {
  TempDir dir;
  const auto csv = (dir.path() / "sssp.csv").string();
  std::string out;
  ASSERT_EQ(run_cli({"run", "--kind", "kron", "--scale", "6",
                     "--systems", "GAP", "--algorithms", "SSSP",
                     "--roots", "2", "--threads", "1", "--no-reconstruct",
                     "--csv", csv},
                    &out),
            0)
      << out;
  EXPECT_TRUE(fs::exists(csv));
}

TEST(Cli, PrepareMissThenHit) {
  TempDir dir;
  const auto cache = (dir.path() / "cache").string();
  const std::vector<std::string> argv = {
      "prepare", "--kind", "kron", "--scale", "6", "--edgefactor", "4",
      "--cache-dir", cache};
  std::string out;
  ASSERT_EQ(run_cli(argv, &out), 0) << out;
  EXPECT_NE(out.find("cache miss"), std::string::npos);
  ASSERT_EQ(run_cli(argv, &out), 0) << out;
  EXPECT_NE(out.find("cache hit"), std::string::npos);
}

TEST(Cli, RunCacheDirWarmHitAndNoCacheBypass) {
  TempDir dir;
  const auto cache = (dir.path() / "cache").string();
  const auto csv = (dir.path() / "r.csv").string();
  const std::vector<std::string> base = {
      "run", "--kind", "kron", "--scale", "6", "--edgefactor", "4",
      "--systems", "GAP", "--algorithms", "BFS", "--roots", "2",
      "--threads", "1", "--csv", csv};

  auto with = [&](std::initializer_list<std::string> extra) {
    std::vector<std::string> argv = base;
    argv.insert(argv.end(), extra);
    return argv;
  };

  std::string out;
  ASSERT_EQ(run_cli(with({"--cache-dir", cache}), &out), 0) << out;
  EXPECT_NE(out.find("cache miss"), std::string::npos);

  // epg prepare warms exactly the cache epg run reads.
  ASSERT_EQ(run_cli(with({"--cache-dir", cache}), &out), 0) << out;
  EXPECT_NE(out.find("cache hit"), std::string::npos);

  ASSERT_EQ(run_cli(with({"--cache-dir", cache, "--no-cache"}), &out), 0)
      << out;
  EXPECT_EQ(out.find("cache hit"), std::string::npos) << out;
  EXPECT_EQ(out.find("cache miss"), std::string::npos) << out;
}

}  // namespace
}  // namespace epgs::cli
