// Property-based tests over seeded random graphs.
//
// Each property runs ~50 cases drawn from a seeded Xoshiro256 stream
// (fully deterministic; no test-order coupling). On failure the harness
// SHRINKS: it bisects the edge set while the property still fails and
// reports the minimal failing graph, so a red run hands the debugger a
// handful of edges instead of a thousand.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <numeric>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/rng.hpp"
#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "graph/transforms.hpp"
#include "systems/common/reference.hpp"
#include "systems/common/registry.hpp"

namespace epgs {
namespace {

/// Random multi-digraph: up to `max_n` vertices, `max_m` edges, possible
/// self loops, duplicates, and isolated vertices — the messy end of the
/// input space, where transform invariants earn their keep.
EdgeList random_graph(Xoshiro256& rng, vid_t max_n = 48, eid_t max_m = 256) {
  EdgeList el;
  el.num_vertices = static_cast<vid_t>(rng.uniform_u64(max_n - 2)) + 2;
  el.directed = true;
  el.weighted = rng.next() % 2 == 0;
  const eid_t m = rng.uniform_u64(max_m);
  el.edges.reserve(m);
  for (eid_t i = 0; i < m; ++i) {
    const auto u = static_cast<vid_t>(rng.uniform_u64(el.num_vertices));
    const auto v = static_cast<vid_t>(rng.uniform_u64(el.num_vertices));
    const auto w = el.weighted
                       ? static_cast<weight_t>(rng.uniform_u64(255) + 1)
                       : 1.0f;
    el.edges.push_back(Edge{u, v, w});
  }
  return el;
}

std::string describe(const EdgeList& el) {
  std::ostringstream os;
  os << el.num_vertices << " vertices, " << el.num_edges() << " edges:";
  for (const auto& e : el.edges) {
    os << " " << e.src << "->" << e.dst;
    if (el.weighted) os << "(" << e.w << ")";
  }
  return os.str();
}

/// Run `property` over `cases` seeded graphs. On a failure, shrink by
/// repeatedly dropping half (then quarters, ...) of the edges while the
/// property keeps failing, and FAIL with the minimal counterexample.
void check_property(std::uint64_t seed, int cases,
                    const std::function<bool(const EdgeList&)>& property) {
  Xoshiro256 rng(seed);
  for (int c = 0; c < cases; ++c) {
    EdgeList el = random_graph(rng);
    if (property(el)) continue;

    // Shrink: ddmin-style halving over the edge list.
    EdgeList minimal = el;
    std::size_t chunk = std::max<std::size_t>(1, minimal.edges.size() / 2);
    while (chunk >= 1 && !minimal.edges.empty()) {
      bool shrunk = false;
      for (std::size_t at = 0; at + chunk <= minimal.edges.size();
           at += chunk) {
        EdgeList candidate = minimal;
        candidate.edges.erase(
            candidate.edges.begin() + static_cast<std::ptrdiff_t>(at),
            candidate.edges.begin() + static_cast<std::ptrdiff_t>(at + chunk));
        if (!property(candidate)) {
          minimal = std::move(candidate);
          shrunk = true;
          break;
        }
      }
      if (!shrunk) {
        if (chunk == 1) break;
        chunk /= 2;
      }
    }
    FAIL() << "property failed at case " << c << " (seed " << seed
           << "); minimal counterexample: " << describe(minimal);
  }
}

TEST(Properties, SymmetrizeBalancesEveryVertexDegree) {
  // After symmetrize, the graph is undirected-as-pairs: per-vertex
  // in-degree == out-degree, and the total degree sum is exactly twice
  // the stored edge count.
  check_property(101, 50, [](const EdgeList& el) {
    const EdgeList sym = symmetrize(el);
    const auto out = out_degrees(sym);
    const auto in = in_degrees(sym);
    if (out != in) return false;
    const auto sum = std::accumulate(out.begin(), out.end(), eid_t{0}) +
                     std::accumulate(in.begin(), in.end(), eid_t{0});
    return sum == 2 * sym.num_edges();
  });
}

TEST(Properties, SymmetrizeIsIdempotentUnderCanonicalization) {
  // symmetrize twice == symmetrize once, modulo the canonical
  // (dedupe-sorted) edge order. Self loops are the classic off-by-one.
  const auto canonical = [](const EdgeList& el) {
    const EdgeList d = dedupe(el, /*drop_self_loops=*/false);
    std::vector<std::tuple<vid_t, vid_t, weight_t>> edges;
    edges.reserve(d.edges.size());
    for (const auto& e : d.edges) edges.emplace_back(e.src, e.dst, e.w);
    return edges;
  };
  check_property(202, 50, [&](const EdgeList& el) {
    const EdgeList once = symmetrize(el);
    const EdgeList twice = symmetrize(once);
    return canonical(once) == canonical(twice);
  });
}

TEST(Properties, TriangleCountInvariantUnderVertexRelabeling) {
  // Triangle count is a graph isomorphism invariant: relabeling vertices
  // by a random permutation must not change it.
  Xoshiro256 perm_rng(303);
  check_property(304, 30, [&](const EdgeList& el) {
    const CSRGraph out = CSRGraph::from_edges(el);
    const CSRGraph in = CSRGraph::from_edges(el, /*transpose=*/true);
    const auto want = ref::triangle_count(out, in).triangles;

    std::vector<vid_t> perm(el.num_vertices);
    std::iota(perm.begin(), perm.end(), vid_t{0});
    for (vid_t i = el.num_vertices; i > 1; --i) {
      std::swap(perm[i - 1],
                perm[static_cast<vid_t>(perm_rng.uniform_u64(i))]);
    }
    EdgeList relabeled = el;
    for (auto& e : relabeled.edges) {
      e.src = perm[e.src];
      e.dst = perm[e.dst];
    }
    const CSRGraph rout = CSRGraph::from_edges(relabeled);
    const CSRGraph rin = CSRGraph::from_edges(relabeled, /*transpose=*/true);
    return ref::triangle_count(rout, rin).triangles == want;
  });
}

TEST(Properties, BfsParentTreeDepthMatchesReferenceDistance) {
  // The BFS parent tree a system under test produces must induce exactly
  // the hop distances of the serial reference oracle: same reachable
  // set, and parent-chain depth == reference level for every vertex.
  check_property(405, 25, [](const EdgeList& el) {
    // BFS needs a connected-ish undirected view to be interesting.
    const EdgeList sym = symmetrize(el);
    const auto sys = make_system("GAP");
    sys->set_edges(sym);
    sys->build();
    const auto levels = sys->bfs(/*root=*/0).levels();
    const auto want = ref::bfs_levels(CSRGraph::from_edges(sym), 0);
    return levels == want;
  });
}

TEST(Properties, DedupeIsIdempotentAndOrdersEdges) {
  check_property(506, 50, [](const EdgeList& el) {
    const EdgeList once = dedupe(el);
    const EdgeList twice = dedupe(once);
    if (once.edges.size() != twice.edges.size()) return false;
    for (std::size_t i = 0; i < once.edges.size(); ++i) {
      if (once.edges[i].src != twice.edges[i].src ||
          once.edges[i].dst != twice.edges[i].dst ||
          once.edges[i].w != twice.edges[i].w) {
        return false;
      }
    }
    // Canonical order, no duplicates, no self loops.
    for (std::size_t i = 0; i < once.edges.size(); ++i) {
      if (once.edges[i].src == once.edges[i].dst) return false;
      if (i > 0) {
        const auto a = std::make_pair(once.edges[i - 1].src,
                                      once.edges[i - 1].dst);
        const auto b = std::make_pair(once.edges[i].src, once.edges[i].dst);
        if (!(a < b)) return false;
      }
    }
    return true;
  });
}

}  // namespace
}  // namespace epgs
