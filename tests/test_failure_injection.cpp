// Failure injection: corrupt, truncate, and mislabel every on-disk
// format; all readers must fail loudly (EpgsError) rather than return
// garbage — the harness depends on files it did not write.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "core/error.hpp"
#include "graph/homogenizer.hpp"
#include "graph/snap_io.hpp"
#include "systems/common/registry.hpp"
#include "test_util.hpp"

namespace epgs {
namespace {

namespace fs = std::filesystem;

class FormatCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    // PID-unique dir: ctest -j runs several of these tests in separate
    // processes concurrently, and a shared path makes SetUp/TearDown
    // of one test delete another's files mid-run.
    dir_ = fs::temp_directory_path() /
           ("epgs_failinj_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    ds_ = homogenize(test::line_graph(10, /*weighted=*/true), "g", dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Truncate a file to `keep` bytes. Returns failure (for ASSERT_TRUE)
  /// when the file cannot be sized or resized: corrupting nothing would
  /// make the "reader rejects corruption" assertions below vacuous.
  [[nodiscard]] static ::testing::AssertionResult truncate_file(
      const fs::path& p, std::uintmax_t keep) {
    std::error_code ec;
    const auto size = fs::file_size(p, ec);
    if (ec) {
      return ::testing::AssertionFailure()
             << "file_size(" << p << "): " << ec.message();
    }
    fs::resize_file(p, std::min(keep, size), ec);
    if (ec) {
      return ::testing::AssertionFailure()
             << "resize_file(" << p << "): " << ec.message();
    }
    return ::testing::AssertionSuccess();
  }

  /// Overwrite the first bytes of a file; fails when the file cannot be
  /// opened or written.
  [[nodiscard]] static ::testing::AssertionResult stomp_header(
      const fs::path& p, const std::string& junk) {
    std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
    if (!f.is_open()) {
      return ::testing::AssertionFailure() << "cannot open " << p;
    }
    f.write(junk.data(), static_cast<std::streamsize>(junk.size()));
    f.flush();
    if (!f.good()) {
      return ::testing::AssertionFailure() << "short write to " << p;
    }
    return ::testing::AssertionSuccess();
  }

  fs::path dir_;
  HomogenizedDataset ds_;
};

TEST_F(FormatCorruption, Graph500BadMagicRejected) {
  const auto p = ds_.path(GraphFormat::kGraph500Bin);
  ASSERT_TRUE(stomp_header(p, "XXXXXXXX"));
  EXPECT_THROW(read_graph500_bin(p), EpgsError);
}

TEST_F(FormatCorruption, Graph500TruncatedRejected) {
  const auto p = ds_.path(GraphFormat::kGraph500Bin);
  ASSERT_TRUE(truncate_file(p, fs::file_size(p) / 2));
  EXPECT_THROW(read_graph500_bin(p), EpgsError);
}

TEST_F(FormatCorruption, GapSgBadMagicRejected) {
  const auto p = ds_.path(GraphFormat::kGapSg);
  ASSERT_TRUE(stomp_header(p, "NOTSG!!!"));
  EXPECT_THROW(read_gap_sg(p), EpgsError);
}

TEST_F(FormatCorruption, GapSgTruncatedRejected) {
  const auto p = ds_.path(GraphFormat::kGapSg);
  ASSERT_TRUE(truncate_file(p, 24));
  EXPECT_THROW(read_gap_sg(p), EpgsError);
}

TEST_F(FormatCorruption, MtxEdgeCountMismatchRejected) {
  const auto p = ds_.path(GraphFormat::kGraphMatMtx);
  // Append a bogus extra edge: declared count no longer matches.
  std::ofstream f(p, std::ios::app);
  f << "1 2 1\n";
  f.close();
  EXPECT_THROW(read_graphmat_mtx(p), EpgsError);
}

TEST_F(FormatCorruption, MtxZeroIndexRejected) {
  const auto p = dir_ / "zero.mtx";
  std::ofstream f(p);
  f << "%%MatrixMarket matrix coordinate pattern general\n3 3 1\n0 1\n";
  f.close();
  EXPECT_THROW(read_graphmat_mtx(p), EpgsError);
}

TEST_F(FormatCorruption, GraphBigBadEdgeLineRejected) {
  const auto dir = ds_.path(GraphFormat::kGraphBigCsv);
  std::ofstream f(dir / "edge.csv", std::ios::app);
  f << "not,a,number\n";
  f.close();
  EXPECT_THROW(read_graphbig_csv(dir), EpgsError);
}

TEST_F(FormatCorruption, GraphBigMissingVertexFileRejected) {
  const auto dir = ds_.path(GraphFormat::kGraphBigCsv);
  fs::remove(dir / "vertex.csv");
  EXPECT_THROW(read_graphbig_csv(dir), EpgsError);
}

TEST_F(FormatCorruption, PowerGraphBadLineRejected) {
  const auto p = ds_.path(GraphFormat::kPowerGraphTsv);
  std::ofstream f(p, std::ios::app);
  f << "garbage line here\n";
  f.close();
  EXPECT_THROW(read_powergraph_tsv(p), EpgsError);
}

TEST_F(FormatCorruption, SnapBadVertexRejected) {
  const auto p = ds_.path(GraphFormat::kSnapText);
  std::ofstream f(p, std::ios::app);
  f << "12 notanumber\n";
  f.close();
  EXPECT_THROW(read_snap_file(p), EpgsError);
}

TEST_F(FormatCorruption, LigraAdjBadHeaderRejected) {
  const auto p = ds_.path(GraphFormat::kLigraAdj);
  ASSERT_TRUE(stomp_header(p, "NotAGraph"));
  EXPECT_THROW(read_ligra_adj(p), EpgsError);
}

TEST_F(FormatCorruption, LigraAdjTruncatedRejected) {
  const auto p = ds_.path(GraphFormat::kLigraAdj);
  ASSERT_TRUE(truncate_file(p, fs::file_size(p) / 3));
  EXPECT_THROW(read_ligra_adj(p), EpgsError);
}

TEST_F(FormatCorruption, LigraAdjOutOfRangeTargetRejected) {
  const auto p = dir_ / "bad.adj";
  std::ofstream f(p);
  f << "AdjacencyGraph\n2\n1\n0\n1\n99\n";  // target 99 in a 2-vertex graph
  f.close();
  EXPECT_THROW(read_ligra_adj(p), EpgsError);
}

TEST_F(FormatCorruption, SystemLoadFileSurfacesReaderErrors) {
  // The adapter path must propagate reader failures, not half-load.
  const auto p = ds_.path(GraphFormat::kGapSg);
  ASSERT_TRUE(stomp_header(p, "NOTSG!!!"));
  auto sys = make_system("GAP");
  EXPECT_THROW(sys->load_file(p), EpgsError);
  EXPECT_FALSE(sys->is_built());
}

TEST_F(FormatCorruption, FusedSystemBuildSurfacesReaderErrors) {
  const auto p = ds_.path(GraphFormat::kPowerGraphTsv);
  std::ofstream f(p, std::ios::app);
  f << "garbage\n";
  f.close();
  auto sys = make_system("PowerGraph");
  sys->load_file(p);  // deferred read: must not throw yet
  EXPECT_THROW(sys->build(), EpgsError);
}

}  // namespace
}  // namespace epgs
