#include "graph/snap_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "core/error.hpp"
#include "test_util.hpp"

namespace epgs {
namespace {

TEST(SnapIo, ParseBasic) {
  const auto el = parse_snap("# comment\n0 1\n1 2\n2 0\n");
  EXPECT_EQ(el.num_vertices, 3u);
  EXPECT_EQ(el.num_edges(), 3u);
  EXPECT_FALSE(el.weighted);
  EXPECT_EQ(el.edges[0], (Edge{0, 1, 1.0f}));
}

TEST(SnapIo, ParseWeighted) {
  const auto el = parse_snap("0 1 2.5\n1 0 3\n");
  EXPECT_TRUE(el.weighted);
  EXPECT_FLOAT_EQ(el.edges[0].w, 2.5f);
  EXPECT_FLOAT_EQ(el.edges[1].w, 3.0f);
}

TEST(SnapIo, ParseTabsAndPadding) {
  const auto el = parse_snap("  0\t7 \n\t3   4\t\n");
  EXPECT_EQ(el.num_vertices, 8u);
  EXPECT_EQ(el.num_edges(), 2u);
  EXPECT_EQ(el.edges[1], (Edge{3, 4, 1.0f}));
}

TEST(SnapIo, CommentsAndBlankLinesIgnored) {
  const auto el = parse_snap("# a\n\n   # indented comment\n5 6\n");
  EXPECT_EQ(el.num_edges(), 1u);
  EXPECT_EQ(el.num_vertices, 7u);
}

TEST(SnapIo, NonContiguousIdsKeptVerbatim) {
  const auto el = parse_snap("10 20\n");
  EXPECT_EQ(el.num_vertices, 21u);  // max id + 1; no relabeling
}

TEST(SnapIo, MalformedLineThrows) {
  EXPECT_THROW(parse_snap("0\n"), EpgsError);
  EXPECT_THROW(parse_snap("a b\n"), EpgsError);
  EXPECT_THROW(parse_snap("1 -2\n"), EpgsError);
}

TEST(SnapIo, MixedWeightednessThrows) {
  EXPECT_THROW(parse_snap("0 1 2.0\n1 2\n"), EpgsError);
}

TEST(SnapIo, WriteIncludesHeaderComment) {
  std::ostringstream os;
  write_snap(os, test::line_graph(3));
  const auto text = os.str();
  EXPECT_NE(text.find("# "), std::string::npos);
  EXPECT_NE(text.find("Nodes: 3"), std::string::npos);
}

TEST(SnapIo, FileRoundTripUnweighted) {
  const auto path =
      std::filesystem::temp_directory_path() / "epgs_snap_rt.snap";
  const auto original = test::two_triangles();
  write_snap_file(path, original);
  const auto back = read_snap_file(path);
  EXPECT_EQ(back.num_vertices, original.num_vertices);
  EXPECT_EQ(back.edges, original.edges);
  std::filesystem::remove(path);
}

TEST(SnapIo, FileRoundTripWeighted) {
  const auto path =
      std::filesystem::temp_directory_path() / "epgs_snap_w.snap";
  const auto original = test::line_graph(5, /*weighted=*/true);
  write_snap_file(path, original);
  const auto back = read_snap_file(path);
  ASSERT_TRUE(back.weighted);
  EXPECT_EQ(back.edges, original.edges);
  std::filesystem::remove(path);
}

TEST(SnapIo, MissingFileThrows) {
  EXPECT_THROW(read_snap_file("/nonexistent/epgs.snap"), EpgsError);
}

}  // namespace
}  // namespace epgs
