#include "systems/common/reference.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace epgs {
namespace {

using test::line_graph;
using test::pagerank_graph;
using test::star_graph;
using test::two_triangles;

TEST(RefBfs, LineGraphLevels) {
  const auto g = CSRGraph::from_edges(line_graph(5));
  const auto levels = ref::bfs_levels(g, 0);
  EXPECT_EQ(levels, (std::vector<vid_t>{0, 1, 2, 3, 4}));
  const auto mid = ref::bfs_levels(g, 2);
  EXPECT_EQ(mid, (std::vector<vid_t>{2, 1, 0, 1, 2}));
}

TEST(RefBfs, UnreachableIsNoVertex) {
  const auto g = CSRGraph::from_edges(two_triangles());
  const auto levels = ref::bfs_levels(g, 0);
  EXPECT_EQ(levels[1], 1u);
  EXPECT_EQ(levels[3], kNoVertex);
  EXPECT_EQ(levels[6], kNoVertex);
}

TEST(RefBfs, DirectedEdgesOnly) {
  EdgeList el;
  el.num_vertices = 3;
  el.edges = {Edge{0, 1, 1.0f}, Edge{2, 1, 1.0f}};
  const auto g = CSRGraph::from_edges(el);
  const auto levels = ref::bfs_levels(g, 0);
  EXPECT_EQ(levels[1], 1u);
  EXPECT_EQ(levels[2], kNoVertex);  // edge 2->1 cannot be traversed backwards
}

TEST(RefDijkstra, WeightedLine) {
  const auto g = CSRGraph::from_edges(line_graph(4, /*weighted=*/true));
  // weights: 0-1 w=1, 1-2 w=2, 2-3 w=3 (v % 5 + 1)
  const auto dist = ref::dijkstra(g, 0);
  EXPECT_FLOAT_EQ(dist[0], 0.0f);
  EXPECT_FLOAT_EQ(dist[1], 1.0f);
  EXPECT_FLOAT_EQ(dist[2], 3.0f);
  EXPECT_FLOAT_EQ(dist[3], 6.0f);
}

TEST(RefDijkstra, PrefersCheaperLongerPath) {
  EdgeList el;
  el.num_vertices = 3;
  el.weighted = true;
  el.edges = {Edge{0, 2, 10.0f}, Edge{0, 1, 1.0f}, Edge{1, 2, 2.0f}};
  const auto g = CSRGraph::from_edges(el);
  const auto dist = ref::dijkstra(g, 0);
  EXPECT_FLOAT_EQ(dist[2], 3.0f);
}

TEST(RefDijkstra, UnreachableInfinite) {
  const auto g = CSRGraph::from_edges(two_triangles());
  const auto dist = ref::dijkstra(g, 3);
  EXPECT_FLOAT_EQ(dist[4], 1.0f);
  EXPECT_EQ(dist[0], kInfDist);
}

TEST(RefPageRank, SumsToOneAndConverges) {
  const auto el = pagerank_graph();
  const auto out = CSRGraph::from_edges(el);
  const auto in = CSRGraph::from_edges(el, true);
  const auto pr = ref::pagerank(out, in, PageRankParams{});
  double sum = 0.0;
  for (const double r : pr.rank) sum += r;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(pr.iterations, 1);
  // Vertex 2 has the most in-links, vertex 3/4 have none.
  EXPECT_GT(pr.rank[2], pr.rank[3]);
  EXPECT_GT(pr.rank[2], pr.rank[4]);
}

TEST(RefPageRank, SymmetricGraphUniformRank) {
  const auto el = test::cycle_graph(6);
  const auto out = CSRGraph::from_edges(el);
  const auto in = CSRGraph::from_edges(el, true);
  const auto pr = ref::pagerank(out, in, PageRankParams{});
  for (const double r : pr.rank) EXPECT_NEAR(r, 1.0 / 6.0, 1e-7);
}

TEST(RefPageRank, MaxIterationsRespected) {
  const auto el = pagerank_graph();
  const auto out = CSRGraph::from_edges(el);
  const auto in = CSRGraph::from_edges(el, true);
  PageRankParams p;
  p.max_iterations = 3;
  p.epsilon = 0.0;
  EXPECT_EQ(ref::pagerank(out, in, p).iterations, 3);
}

TEST(RefCdlp, TrianglesConvergeToMinLabel) {
  const auto el = two_triangles();
  const auto out = CSRGraph::from_edges(el);
  const auto in = CSRGraph::from_edges(el, true);
  const auto r = ref::cdlp(out, in, 10);
  EXPECT_EQ(r.label[0], r.label[1]);
  EXPECT_EQ(r.label[1], r.label[2]);
  EXPECT_EQ(r.label[3], r.label[4]);
  EXPECT_EQ(r.label[4], r.label[5]);
  EXPECT_NE(r.label[0], r.label[3]);
  EXPECT_EQ(r.label[6], 6u);  // isolated keeps its own label
}

TEST(RefCdlp, IterationCap) {
  const auto el = line_graph(30);
  const auto out = CSRGraph::from_edges(el);
  const auto in = CSRGraph::from_edges(el, true);
  const auto r = ref::cdlp(out, in, 3);
  EXPECT_EQ(r.iterations, 3);
}

TEST(RefLcc, TriangleIsFullyClustered) {
  const auto el = two_triangles();
  const auto out = CSRGraph::from_edges(el);
  const auto in = CSRGraph::from_edges(el, true);
  const auto r = ref::lcc(out, in);
  for (vid_t v = 0; v < 6; ++v) EXPECT_DOUBLE_EQ(r.coefficient[v], 1.0);
  EXPECT_DOUBLE_EQ(r.coefficient[6], 0.0);
}

TEST(RefLcc, StarHasZeroClustering) {
  const auto el = star_graph(6);
  const auto out = CSRGraph::from_edges(el);
  const auto in = CSRGraph::from_edges(el, true);
  const auto r = ref::lcc(out, in);
  for (vid_t v = 0; v < 6; ++v) EXPECT_DOUBLE_EQ(r.coefficient[v], 0.0);
}

TEST(RefLcc, PartialClustering) {
  // Square 0-1-2-3 plus diagonal 0-2: lcc(1) = lcc(3) = 1 (their two
  // neighbours 0,2 are connected), lcc(0) = lcc(2) = 2/6 * 2 = 2/3... —
  // compute: N(0) = {1,2,3}; links among them (symmetric counted both
  // ways): 1-2, 2-1, 2-3, 3-2 = 4 of 6 ordered pairs -> 2/3.
  EdgeList el;
  el.num_vertices = 4;
  const std::vector<std::pair<vid_t, vid_t>> pairs = {
      {0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}};
  for (const auto& [a, b] : pairs) {
    el.edges.push_back(Edge{a, b, 1.0f});
    el.edges.push_back(Edge{b, a, 1.0f});
  }
  const auto out = CSRGraph::from_edges(el);
  const auto in = CSRGraph::from_edges(el, true);
  const auto r = ref::lcc(out, in);
  EXPECT_DOUBLE_EQ(r.coefficient[1], 1.0);
  EXPECT_DOUBLE_EQ(r.coefficient[3], 1.0);
  EXPECT_NEAR(r.coefficient[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(r.coefficient[2], 2.0 / 3.0, 1e-12);
}

TEST(RefWcc, ComponentsGetMinIds) {
  const auto r = ref::wcc(two_triangles());
  EXPECT_EQ(r.component, (std::vector<vid_t>{0, 0, 0, 3, 3, 3, 6}));
  EXPECT_EQ(r.num_components(), 3u);
}

TEST(RefWcc, DirectionIgnored) {
  EdgeList el;
  el.num_vertices = 4;
  el.edges = {Edge{1, 0, 1.0f}, Edge{2, 3, 1.0f}};
  const auto r = ref::wcc(el);
  EXPECT_EQ(r.component, (std::vector<vid_t>{0, 0, 2, 2}));
}

TEST(RefTriangleCount, KnownCounts) {
  {
    const auto el = two_triangles();
    const auto out = CSRGraph::from_edges(el);
    const auto in = CSRGraph::from_edges(el, true);
    EXPECT_EQ(ref::triangle_count(out, in).triangles, 2u);
  }
  {
    const auto el = test::complete_graph(5);  // C(5,3) = 10
    const auto out = CSRGraph::from_edges(el);
    const auto in = CSRGraph::from_edges(el, true);
    EXPECT_EQ(ref::triangle_count(out, in).triangles, 10u);
  }
  {
    const auto el = star_graph(8);
    const auto out = CSRGraph::from_edges(el);
    const auto in = CSRGraph::from_edges(el, true);
    EXPECT_EQ(ref::triangle_count(out, in).triangles, 0u);
  }
}

TEST(RefTriangleCount, DirectionIgnored) {
  // A directed 3-cycle is one triangle in the undirected view.
  EdgeList el;
  el.num_vertices = 3;
  el.edges = {Edge{0, 1, 1.0f}, Edge{1, 2, 1.0f}, Edge{2, 0, 1.0f}};
  const auto out = CSRGraph::from_edges(el);
  const auto in = CSRGraph::from_edges(el, true);
  EXPECT_EQ(ref::triangle_count(out, in).triangles, 1u);
}

TEST(RefBrandesBc, LineGraphDependencies) {
  const auto el = line_graph(5);
  const auto out = CSRGraph::from_edges(el);
  const auto in = CSRGraph::from_edges(el, true);
  const auto r = ref::brandes_bc(out, in, 0);
  // sigma = 1 everywhere; delta(v) = #vertices strictly beyond v.
  EXPECT_DOUBLE_EQ(r.dependency[4], 0.0);
  EXPECT_DOUBLE_EQ(r.dependency[3], 1.0);
  EXPECT_DOUBLE_EQ(r.dependency[2], 2.0);
  EXPECT_DOUBLE_EQ(r.dependency[1], 3.0);
}

TEST(RefBrandesBc, StarFromLeaf) {
  const auto el = star_graph(5);
  const auto out = CSRGraph::from_edges(el);
  const auto in = CSRGraph::from_edges(el, true);
  const auto r = ref::brandes_bc(out, in, 1);
  EXPECT_DOUBLE_EQ(r.dependency[0], 3.0);  // hub covers 3 other leaves
  EXPECT_DOUBLE_EQ(r.dependency[2], 0.0);
  EXPECT_DOUBLE_EQ(r.dependency[3], 0.0);
}

TEST(RefBrandesBc, MultiplePathsSplitCredit) {
  // Diamond: 0->1, 0->2, 1->3, 2->3. sigma(3) = 2, so 1 and 2 each get
  // half the credit for 3.
  EdgeList el;
  el.num_vertices = 4;
  el.edges = {Edge{0, 1, 1.0f}, Edge{0, 2, 1.0f}, Edge{1, 3, 1.0f},
              Edge{2, 3, 1.0f}};
  const auto out = CSRGraph::from_edges(el);
  const auto in = CSRGraph::from_edges(el, true);
  const auto r = ref::brandes_bc(out, in, 0);
  EXPECT_DOUBLE_EQ(r.dependency[1], 0.5);
  EXPECT_DOUBLE_EQ(r.dependency[2], 0.5);
  EXPECT_DOUBLE_EQ(r.dependency[3], 0.0);
  EXPECT_DOUBLE_EQ(r.dependency[0], 3.0);  // 1 + 0.5 + 1 + 0.5
}

TEST(RefBrandesBc, UnreachableVerticesZero) {
  const auto el = two_triangles();
  const auto out = CSRGraph::from_edges(el);
  const auto in = CSRGraph::from_edges(el, true);
  const auto r = ref::brandes_bc(out, in, 0);
  EXPECT_DOUBLE_EQ(r.dependency[3], 0.0);
  EXPECT_DOUBLE_EQ(r.dependency[6], 0.0);
}

TEST(RefNeighborUnion, MergesAndExcludesSelf) {
  EdgeList el;
  el.num_vertices = 4;
  el.edges = {Edge{0, 1, 1.0f}, Edge{2, 0, 1.0f}, Edge{0, 0, 1.0f},
              Edge{0, 1, 1.0f}};
  const auto out = CSRGraph::from_edges(el);
  const auto in = CSRGraph::from_edges(el, true);
  EXPECT_EQ(ref::neighbor_union(out, in, 0), (std::vector<vid_t>{1, 2}));
}

}  // namespace
}  // namespace epgs
