// Shared fixtures: small graphs with known properties, used across the
// per-system and cross-system suites.
#pragma once

#include <vector>

#include "graph/edge_list.hpp"
#include "graph/transforms.hpp"

namespace epgs::test {

/// Undirected path 0-1-2-...-(n-1), stored as symmetric directed pairs.
inline EdgeList line_graph(vid_t n, bool weighted = false) {
  EdgeList el;
  el.num_vertices = n;
  el.directed = false;
  el.weighted = weighted;
  for (vid_t v = 0; v + 1 < n; ++v) {
    const auto w = weighted ? static_cast<weight_t>(v % 5 + 1) : 1.0f;
    el.edges.push_back(Edge{v, v + 1, w});
    el.edges.push_back(Edge{v + 1, v, w});
  }
  return el;
}

/// Star: vertex 0 connected to 1..n-1 (symmetric).
inline EdgeList star_graph(vid_t n) {
  EdgeList el;
  el.num_vertices = n;
  el.directed = false;
  for (vid_t v = 1; v < n; ++v) {
    el.edges.push_back(Edge{0, v, 1.0f});
    el.edges.push_back(Edge{v, 0, 1.0f});
  }
  return el;
}

/// Undirected cycle of length n.
inline EdgeList cycle_graph(vid_t n) {
  EdgeList el;
  el.num_vertices = n;
  el.directed = false;
  for (vid_t v = 0; v < n; ++v) {
    const vid_t u = (v + 1) % n;
    el.edges.push_back(Edge{v, u, 1.0f});
    el.edges.push_back(Edge{u, v, 1.0f});
  }
  return el;
}

/// Two disjoint triangles {0,1,2} and {3,4,5} plus isolated vertex 6.
inline EdgeList two_triangles() {
  EdgeList el;
  el.num_vertices = 7;
  el.directed = false;
  const std::vector<std::pair<vid_t, vid_t>> pairs = {
      {0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}};
  for (const auto& [a, b] : pairs) {
    el.edges.push_back(Edge{a, b, 1.0f});
    el.edges.push_back(Edge{b, a, 1.0f});
  }
  return el;
}

/// Complete graph K_n, weighted with w(u,v) = |u-v|.
inline EdgeList complete_graph(vid_t n, bool weighted = false) {
  EdgeList el;
  el.num_vertices = n;
  el.directed = false;
  el.weighted = weighted;
  for (vid_t u = 0; u < n; ++u) {
    for (vid_t v = 0; v < n; ++v) {
      if (u == v) continue;
      const auto w =
          weighted ? static_cast<weight_t>(u > v ? u - v : v - u) : 1.0f;
      el.edges.push_back(Edge{u, v, w});
    }
  }
  return el;
}

/// Small directed graph with a dangling vertex (for PageRank edge cases):
/// 0->1, 0->2, 1->2, 2->0, 3->2 ; vertex 4 is isolated; 3 has no in-edges.
inline EdgeList pagerank_graph() {
  EdgeList el;
  el.num_vertices = 5;
  el.directed = true;
  el.edges = {Edge{0, 1, 1.0f}, Edge{0, 2, 1.0f}, Edge{1, 2, 1.0f},
              Edge{2, 0, 1.0f}, Edge{3, 2, 1.0f}};
  return el;
}

}  // namespace epgs::test
