#include "graph/statistics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/datasets.hpp"
#include "gen/kronecker.hpp"
#include "test_util.hpp"

namespace epgs {
namespace {

TEST(GraphStatistics, StarSummary) {
  const auto s = summarize_graph(test::star_graph(5));
  EXPECT_EQ(s.num_vertices, 5u);
  EXPECT_EQ(s.num_edges, 8u);
  EXPECT_DOUBLE_EQ(s.density, 8.0 / 20.0);
  EXPECT_DOUBLE_EQ(s.avg_out_degree, 1.6);
  EXPECT_EQ(s.isolated_vertices, 0u);
  EXPECT_EQ(s.self_loops, 0u);
  EXPECT_EQ(s.out_degree.max, 4u);  // hub
  EXPECT_EQ(s.out_degree.min, 1u);
  EXPECT_DOUBLE_EQ(s.out_degree.median, 1.0);
}

TEST(GraphStatistics, IsolatedAndLoops) {
  EdgeList el;
  el.num_vertices = 4;
  el.edges = {Edge{0, 0, 1.0f}, Edge{0, 1, 1.0f}};
  const auto s = summarize_graph(el);
  EXPECT_EQ(s.isolated_vertices, 2u);  // 2, 3
  EXPECT_EQ(s.self_loops, 1u);
}

TEST(GraphStatistics, WeightStats) {
  EdgeList el;
  el.num_vertices = 3;
  el.weighted = true;
  el.edges = {Edge{0, 1, 2.0f}, Edge{1, 2, 4.0f}, Edge{2, 0, 6.0f}};
  const auto s = summarize_graph(el);
  EXPECT_DOUBLE_EQ(s.min_weight, 2.0);
  EXPECT_DOUBLE_EQ(s.mean_weight, 4.0);
  EXPECT_DOUBLE_EQ(s.max_weight, 6.0);
}

TEST(GraphStatistics, HistogramCounts) {
  const auto hist = degree_histogram({1, 1, 2, 5, 5, 5});
  EXPECT_EQ(hist.at(1), 2u);
  EXPECT_EQ(hist.at(2), 1u);
  EXPECT_EQ(hist.at(5), 3u);
  EXPECT_EQ(hist.size(), 3u);
}

TEST(PowerlawMle, RecoversKnownExponent) {
  // Sample a discrete power law with alpha = 2.5 by inverse transform on
  // a deterministic grid; the MLE must land near 2.5.
  std::vector<eid_t> degrees;
  const double alpha = 2.5;
  for (int i = 1; i <= 20000; ++i) {
    const double u = (i - 0.5) / 20000.0;
    const double x = std::pow(1.0 - u, -1.0 / (alpha - 1.0));
    degrees.push_back(static_cast<eid_t>(x));
  }
  // Fit the tail: the continuous-approximation MLE (with the -0.5
  // shift) is only accurate for xmin a few times above 1 when applied to
  // floored samples.
  const double fit = powerlaw_alpha_mle(degrees, 10);
  EXPECT_NEAR(fit, alpha, 0.25);
}

TEST(PowerlawMle, TooFewTailSamplesReturnsZero) {
  EXPECT_DOUBLE_EQ(powerlaw_alpha_mle({1, 2, 3}, 10), 0.0);
  EXPECT_DOUBLE_EQ(powerlaw_alpha_mle({}, 1), 0.0);
}

TEST(GraphStatistics, KroneckerIsHeavyTailed) {
  gen::KroneckerParams p;
  p.scale = 10;
  const auto s = summarize_graph(gen::kronecker(p));
  EXPECT_GT(s.in_degree.powerlaw_alpha, 1.2);
  EXPECT_LT(s.in_degree.powerlaw_alpha, 4.0);
  EXPECT_GT(static_cast<double>(s.out_degree.max),
            10.0 * s.avg_out_degree);
}

TEST(GraphStatistics, StandInsMatchPaperCharacter) {
  // dota-like must be far denser than patents-like — the property the
  // paper's Fig 8 discussion depends on.
  gen::DotaLikeParams dp;
  dp.fraction = 0.02;
  const auto dota = summarize_graph(gen::dota_like(dp));
  gen::PatentsLikeParams pp;
  pp.fraction = 0.002;
  const auto patents = summarize_graph(gen::patents_like(pp));
  EXPECT_GT(dota.density, 20.0 * patents.density);
  EXPECT_TRUE(dota.weighted);
  EXPECT_FALSE(patents.weighted);
  // Citation networks: heavy-tailed in-degree.
  EXPECT_GT(patents.in_degree.powerlaw_alpha, 1.2);
}

TEST(GraphStatistics, RenderMentionsKeyFields) {
  const auto text = render_summary(summarize_graph(test::star_graph(6)));
  EXPECT_NE(text.find("vertices"), std::string::npos);
  EXPECT_NE(text.find("density"), std::string::npos);
  EXPECT_NE(text.find("out-degree"), std::string::npos);
}

}  // namespace
}  // namespace epgs
