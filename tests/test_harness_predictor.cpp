#include "harness/predictor.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/timer.hpp"
#include "gen/kronecker.hpp"
#include "graph/transforms.hpp"
#include "systems/gap/gap_system.hpp"
#include "test_util.hpp"

namespace epgs::harness {
namespace {

TEST(GraphStats, ComputesMoments) {
  const auto s = GraphStats::of(test::star_graph(5));
  EXPECT_EQ(s.n, 5u);
  EXPECT_EQ(s.m, 8u);
  // Center total degree 8, each leaf 2: 64 + 4*4 = 80.
  EXPECT_DOUBLE_EQ(s.sum_deg_sq, 80.0);
}

TEST(WorkUnits, MonotoneInGraphSize) {
  GraphStats small{.n = 100, .m = 1000, .sum_deg_sq = 5e4};
  GraphStats large{.n = 1000, .m = 10000, .sum_deg_sq = 5e6};
  for (const auto alg :
       {Algorithm::kBfs, Algorithm::kSssp, Algorithm::kPageRank,
        Algorithm::kCdlp, Algorithm::kLcc, Algorithm::kWcc, Algorithm::kTc,
        Algorithm::kBc}) {
    EXPECT_LT(estimated_work_units(alg, small),
              estimated_work_units(alg, large))
        << algorithm_name(alg);
  }
}

TEST(WorkUnits, LccScalesWithDegreeSecondMoment) {
  GraphStats sparse{.n = 1000, .m = 4000, .sum_deg_sq = 1e4};
  GraphStats skewed{.n = 1000, .m = 4000, .sum_deg_sq = 1e8};
  EXPECT_GT(estimated_work_units(Algorithm::kLcc, skewed),
            100.0 * estimated_work_units(Algorithm::kLcc, sparse));
  EXPECT_EQ(estimated_work_units(Algorithm::kBfs, sparse),
            estimated_work_units(Algorithm::kBfs, skewed));
}

TEST(Predictor, CalibrationYieldsSaneModel) {
  const auto pred = Predictor::calibrate("GAP", Algorithm::kBfs, 7, 9);
  EXPECT_EQ(pred.system(), "GAP");
  EXPECT_GE(pred.fixed_overhead_s(), 0.0);
  EXPECT_GT(pred.seconds_per_unit(), 0.0);
}

TEST(Predictor, ExtrapolationWithinAnOrderOfMagnitude) {
  const auto pred = Predictor::calibrate("GAP", Algorithm::kBfs, 7, 9);

  // Target: one scale beyond the calibration range.
  gen::KroneckerParams p;
  p.scale = 11;
  p.edgefactor = 8;
  p.seed = 7;
  const auto el = dedupe(symmetrize(gen::kronecker(p)));
  const auto stats = GraphStats::of(el);

  systems::GapSystem sys;
  sys.set_edges(el);
  sys.build();
  const auto roots = select_roots(el, 3, 5);
  WallTimer t;
  for (const auto r : roots) (void)sys.bfs(r);
  const double actual = t.seconds() / 3.0;

  const double predicted = pred.predict_seconds(stats);
  EXPECT_GT(predicted, actual / 10.0);
  EXPECT_LT(predicted, actual * 10.0)
      << "predicted " << predicted << "s vs actual " << actual << "s";
}

TEST(Predictor, PredictionsMonotoneInSize) {
  const auto pred = Predictor::calibrate("GraphMat", Algorithm::kPageRank,
                                         7, 8);
  GraphStats small{.n = 1 << 10, .m = 1 << 13, .sum_deg_sq = 1e5};
  GraphStats large{.n = 1 << 20, .m = 1 << 24, .sum_deg_sq = 1e9};
  EXPECT_LT(pred.predict_seconds(small), pred.predict_seconds(large));
  EXPECT_LT(pred.predict_bytes(small), pred.predict_bytes(large));
}

TEST(Predictor, FeasibilityVerdicts) {
  const auto pred = Predictor::calibrate("GAP", Algorithm::kBfs, 7, 8);
  GraphStats huge{.n = 1u << 30, .m = eid_t{1} << 36, .sum_deg_sq = 1e18};
  GraphStats tiny{.n = 64, .m = 256, .sum_deg_sq = 4096};

  EXPECT_TRUE(pred.feasible(tiny, /*time=*/60.0, /*mem=*/1u << 30));
  EXPECT_FALSE(pred.feasible(huge, /*time=*/1e-3, /*mem=*/~0ull))
      << "2^36 edges cannot finish in a millisecond";
  EXPECT_FALSE(pred.feasible(tiny, 60.0, /*mem=*/16))
      << "16 bytes cannot hold any graph";
}

TEST(Predictor, UnsupportedAlgorithmThrows) {
  EXPECT_THROW(Predictor::calibrate("Graph500", Algorithm::kPageRank, 7, 8),
               UnsupportedAlgorithm);
}

TEST(Predictor, BadScaleOrderThrows) {
  EXPECT_THROW(Predictor::calibrate("GAP", Algorithm::kBfs, 9, 9),
               EpgsError);
}

}  // namespace
}  // namespace epgs::harness
