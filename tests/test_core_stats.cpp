#include "core/stats.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace epgs {
namespace {

TEST(Stats, SingleValue) {
  const auto b = box_stats({3.0});
  EXPECT_DOUBLE_EQ(b.min, 3.0);
  EXPECT_DOUBLE_EQ(b.q1, 3.0);
  EXPECT_DOUBLE_EQ(b.median, 3.0);
  EXPECT_DOUBLE_EQ(b.q3, 3.0);
  EXPECT_DOUBLE_EQ(b.max, 3.0);
  EXPECT_DOUBLE_EQ(b.mean, 3.0);
  EXPECT_DOUBLE_EQ(b.stddev, 0.0);
  EXPECT_EQ(b.n, 1u);
}

TEST(Stats, KnownFiveNumberSummary) {
  // R: quantile(c(1,2,3,4,5), type=7) -> 25% = 2, 50% = 3, 75% = 4.
  const auto b = box_stats({5.0, 1.0, 4.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(b.min, 1.0);
  EXPECT_DOUBLE_EQ(b.q1, 2.0);
  EXPECT_DOUBLE_EQ(b.median, 3.0);
  EXPECT_DOUBLE_EQ(b.q3, 4.0);
  EXPECT_DOUBLE_EQ(b.max, 5.0);
  EXPECT_DOUBLE_EQ(b.mean, 3.0);
}

TEST(Stats, EvenSampleInterpolates) {
  // R: quantile(c(1,2,3,4), type=7) -> 25% = 1.75, 50% = 2.5, 75% = 3.25.
  const auto b = box_stats({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(b.q1, 1.75);
  EXPECT_DOUBLE_EQ(b.median, 2.5);
  EXPECT_DOUBLE_EQ(b.q3, 3.25);
}

TEST(Stats, SampleStddev) {
  const auto b = box_stats({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(b.mean, 5.0);
  EXPECT_NEAR(b.stddev, 2.13809, 1e-5);  // sqrt(32/7)
  EXPECT_NEAR(b.relative_stddev(), 2.13809 / 5.0, 1e-5);
}

TEST(Stats, EmptySampleThrows) {
  EXPECT_THROW(box_stats({}), std::invalid_argument);
}

TEST(Stats, QuantileBounds) {
  const std::vector<double> s = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(s, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(s, 1.0), 3.0);
  EXPECT_THROW(quantile_sorted(s, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile_sorted(s, 1.1), std::invalid_argument);
  EXPECT_THROW(quantile_sorted({}, 0.5), std::invalid_argument);
}

TEST(Stats, MeanOfEmptyIsZero) { EXPECT_DOUBLE_EQ(mean_of({}), 0.0); }

TEST(Stats, SpeedupAndEfficiency) {
  EXPECT_DOUBLE_EQ(speedup(10.0, 2.5), 4.0);
  EXPECT_DOUBLE_EQ(efficiency(10.0, 4, 2.5), 1.0);   // ideal
  EXPECT_DOUBLE_EQ(efficiency(10.0, 8, 2.5), 0.5);   // half efficient
}

TEST(Stats, RelativeStddevZeroMean) {
  BoxStats b;
  b.mean = 0.0;
  b.stddev = 1.0;
  EXPECT_DOUBLE_EQ(b.relative_stddev(), 0.0);
}

class QuantileMonotoneTest : public ::testing::TestWithParam<double> {};

TEST_P(QuantileMonotoneTest, WithinRangeAndMonotone) {
  const std::vector<double> s = {0.5, 1.5, 2.0, 8.0, 9.0, 12.0, 20.0};
  const double q = GetParam();
  const double v = quantile_sorted(s, q);
  EXPECT_GE(v, s.front());
  EXPECT_LE(v, s.back());
  if (q >= 0.1) {
    EXPECT_LE(quantile_sorted(s, q - 0.1), v);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, QuantileMonotoneTest,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9,
                                           1.0));

}  // namespace
}  // namespace epgs
