#include "systems/common/results.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace epgs {
namespace {

TEST(BfsLevels, ChainAndUnreached) {
  BfsResult r;
  r.root = 0;
  r.parent = {0, 0, 1, 2, kNoVertex};
  EXPECT_EQ(r.levels(), (std::vector<vid_t>{0, 1, 2, 3, kNoVertex}));
}

TEST(BfsLevels, DeepChainNoRecursionLimit) {
  constexpr vid_t n = 100000;
  BfsResult r;
  r.root = 0;
  r.parent.resize(n);
  r.parent[0] = 0;
  for (vid_t v = 1; v < n; ++v) r.parent[v] = v - 1;
  const auto levels = r.levels();
  EXPECT_EQ(levels[n - 1], n - 1);
}

TEST(BfsLevels, BranchingTree) {
  BfsResult r;
  r.root = 2;
  r.parent = {2, 2, 2, 0, 0, 1};
  const auto levels = r.levels();
  EXPECT_EQ(levels, (std::vector<vid_t>{1, 1, 0, 2, 2, 2}));
}

TEST(BfsLevels, CycleDetected) {
  BfsResult r;
  r.root = 0;
  r.parent = {0, 2, 1};
  EXPECT_THROW(r.levels(), EpgsError);
}

TEST(BfsLevels, ParentChainsToUnreachable) {
  BfsResult r;
  r.root = 0;
  r.parent = {0, kNoVertex, 1};  // 2's parent is unreached
  EXPECT_THROW(r.levels(), EpgsError);
}

TEST(BfsLevels, RootWithoutSelfParentHasNoLevelZero) {
  BfsResult r;
  r.root = 0;
  r.parent = {kNoVertex, kNoVertex};
  const auto levels = r.levels();
  EXPECT_EQ(levels[0], kNoVertex);
  EXPECT_EQ(levels[1], kNoVertex);
}

TEST(WccNumComponents, CountsRepresentatives) {
  WccResult r;
  r.component = {0, 0, 2, 2, 4};
  EXPECT_EQ(r.num_components(), 3u);
  WccResult empty;
  EXPECT_EQ(empty.num_components(), 0u);
}

}  // namespace
}  // namespace epgs
