#include "harness/analysis.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "systems/common/system.hpp"

namespace epgs::harness {
namespace {

ExperimentResult synthetic_result() {
  ExperimentResult r;
  auto add = [&](std::string system, std::string alg, int trial,
                 double seconds, std::uint64_t edges) {
    RunRecord rec;
    rec.dataset = "synthetic";
    rec.system = std::move(system);
    rec.algorithm = std::move(alg);
    rec.threads = 32;
    rec.trial = trial;
    rec.phase = std::string(phase::kAlgorithm);
    rec.seconds = seconds;
    rec.work.edges_processed = edges;
    rec.work.bytes_touched = edges * 8;
    r.records.push_back(std::move(rec));
  };
  // "GAP": fast; "GraphBIG": 100x slower, fewer edges/sec.
  for (int t = 0; t < 4; ++t) {
    add("GAP", "BFS", t, 0.016 + 0.001 * t, 30'000'000);
    add("GraphBIG", "BFS", t, 1.6 + 0.1 * t, 30'000'000);
  }
  return r;
}

TEST(Analysis, PhaseStatsComputesBox) {
  const auto result = synthetic_result();
  const auto b = phase_stats(result, "GAP", phase::kAlgorithm, "BFS");
  EXPECT_EQ(b.n, 4u);
  EXPECT_DOUBLE_EQ(b.min, 0.016);
  EXPECT_DOUBLE_EQ(b.max, 0.019);
  EXPECT_TRUE(has_records(result, "GAP", phase::kAlgorithm));
  EXPECT_FALSE(has_records(result, "GAP", phase::kBuild));
  EXPECT_THROW(phase_stats(result, "GAP", phase::kBuild), EpgsError);
}

TEST(Analysis, EnergyTableShape) {
  const auto result = synthetic_result();
  const power::MachineModel machine;
  const auto rows = energy_table(result, machine, "BFS");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].system, "GAP");
  EXPECT_EQ(rows[1].system, "GraphBIG");

  for (const auto& row : rows) {
    EXPECT_GT(row.avg_cpu_power_w, machine.cpu_idle_w);
    EXPECT_GT(row.energy_per_root_j, 0.0);
    EXPECT_GT(row.sleep_energy_j, 0.0);
    EXPECT_GT(row.increase_over_sleep, 1.0)
        << "doing work must cost more than sleeping";
  }
  // Table III shape: the fastest code is also the most energy efficient.
  EXPECT_LT(rows[0].energy_per_root_j, rows[1].energy_per_root_j);
  // The faster system has the higher edge throughput, hence higher power.
  EXPECT_GT(rows[0].avg_cpu_power_w, rows[1].avg_cpu_power_w);
}

TEST(Analysis, PerTrialPowerOnePerRecord) {
  const auto result = synthetic_result();
  const auto est =
      per_trial_power(result, "GAP", "BFS", power::MachineModel{});
  EXPECT_EQ(est.size(), 4u);
  for (const auto& e : est) {
    EXPECT_GT(e.cpu_watts, 0.0);
    EXPECT_GE(e.ram_watts, 0.0);
  }
}

TEST(Analysis, ScalabilitySweepProducesCurves) {
  ExperimentConfig cfg;
  cfg.graph.kind = GraphSpec::Kind::kKronecker;
  cfg.graph.scale = 7;
  cfg.graph.edgefactor = 8;
  cfg.systems = {"GAP", "Graph500"};
  cfg.algorithms = {Algorithm::kBfs};
  cfg.num_roots = 2;
  cfg.reconstruct_per_trial = false;

  const auto curves = scalability_sweep(cfg, {1, 2});
  ASSERT_EQ(curves.size(), 2u);
  for (const auto& curve : curves) {
    ASSERT_EQ(curve.points.size(), 2u);
    EXPECT_EQ(curve.points[0].threads, 1);
    EXPECT_DOUBLE_EQ(curve.points[0].speedup, 1.0);
    EXPECT_DOUBLE_EQ(curve.points[0].efficiency, 1.0);
    EXPECT_GT(curve.points[1].mean_seconds, 0.0);
    // efficiency = speedup / threads by definition.
    EXPECT_NEAR(curve.points[1].efficiency,
                curve.points[1].speedup / curve.points[1].threads, 1e-12);
  }
}

TEST(Analysis, ScalabilityRejectsEmptyLadder) {
  ExperimentConfig cfg;
  cfg.systems = {"GAP"};
  cfg.algorithms = {Algorithm::kBfs};
  EXPECT_THROW(scalability_sweep(cfg, {}), EpgsError);
}

TEST(Analysis, EnergyTableEmptyForUnknownAlgorithm) {
  const auto rows = energy_table(synthetic_result(), power::MachineModel{},
                                 "PageRank");
  EXPECT_TRUE(rows.empty());
}

// --- failure-group triage ------------------------------------------------

RunRecord failed_record(std::string system, std::string alg,
                        std::string phase_name, Outcome outcome,
                        std::string fingerprint = {},
                        std::string message = {}) {
  RunRecord rec;
  rec.dataset = "synthetic";
  rec.system = std::move(system);
  rec.algorithm = std::move(alg);
  rec.phase = std::move(phase_name);
  rec.outcome = outcome;
  if (!fingerprint.empty()) rec.extra["crash_fingerprint"] = fingerprint;
  if (!message.empty()) rec.extra["error"] = message;
  return rec;
}

TEST(Analysis, FailureGroupsCollapseIdenticalFailures) {
  std::vector<RunRecord> records;
  // Successes never appear in triage.
  records.push_back(synthetic_result().records[0]);
  // Three identical crashes (same unit, same stack) = one row, count 3.
  for (int i = 0; i < 3; ++i) {
    records.push_back(failed_record("GAP", "BFS", "bfs", Outcome::kCrash,
                                    "deadbeefdeadbeef", "segfault in scan"));
  }
  // Same unit, different stack: its own group.
  records.push_back(failed_record("GAP", "BFS", "bfs", Outcome::kCrash,
                                  "0123456789abcdef", "segfault elsewhere"));
  // A build-phase timeout with no algorithm or fingerprint.
  records.push_back(
      failed_record("GraphMat", "", "build graph", Outcome::kTimeout));

  const auto groups = failure_groups(records);
  ASSERT_EQ(groups.size(), 3u);
  // Most frequent first; first-seen order within the count-1 tie.
  EXPECT_EQ(groups[0].count, 3);
  EXPECT_EQ(groups[0].system, "GAP");
  EXPECT_EQ(groups[0].crash_fingerprint, "deadbeefdeadbeef");
  EXPECT_EQ(groups[0].message, "segfault in scan");
  EXPECT_EQ(groups[1].count, 1);
  EXPECT_EQ(groups[1].crash_fingerprint, "0123456789abcdef");
  EXPECT_EQ(groups[2].system, "GraphMat");
  EXPECT_EQ(groups[2].outcome, Outcome::kTimeout);
  EXPECT_TRUE(groups[2].crash_fingerprint.empty());
}

TEST(Analysis, FailureGroupsEmptyWhenEverythingSucceeded) {
  const auto records = synthetic_result().records;
  EXPECT_TRUE(failure_groups(records).empty());
  EXPECT_TRUE(render_failure_groups({}).empty());
}

TEST(Analysis, RenderFailureGroupsShowsUnitStackAndMessage) {
  const std::vector<RunRecord> records = {
      failed_record("GAP", "BFS", "bfs", Outcome::kCrash,
                    "deadbeefdeadbeef", "segfault in scan"),
      failed_record("GraphMat", "", "build graph", Outcome::kTimeout)};
  const std::string table = render_failure_groups(failure_groups(records));
  EXPECT_NE(table.find("count"), std::string::npos);
  EXPECT_NE(table.find("GAP/BFS"), std::string::npos);
  EXPECT_NE(table.find("GraphMat/build graph"), std::string::npos)
      << "a phase-only failure renders system/phase";
  EXPECT_NE(table.find("deadbeefdeadbeef"), std::string::npos);
  EXPECT_NE(table.find("segfault in scan"), std::string::npos);
  EXPECT_NE(table.find(" - "), std::string::npos)
      << "missing fingerprints render as '-'";
}

}  // namespace
}  // namespace epgs::harness
