#include <gtest/gtest.h>

#include <thread>

#include "core/error.hpp"
#include "power/model.hpp"
#include "power/rapl.hpp"

namespace epgs::power {
namespace {

TEST(PowerModel, IdleWhenNoWork) {
  const MachineModel m;
  const auto e = estimate(m, WorkloadSample{.seconds = 10.0,
                                            .threads = 0,
                                            .work = {}});
  EXPECT_DOUBLE_EQ(e.cpu_watts, m.cpu_idle_w);
  EXPECT_DOUBLE_EQ(e.ram_watts, m.ram_idle_w);
  EXPECT_DOUBLE_EQ(e.cpu_joules, m.cpu_idle_w * 10.0);
}

TEST(PowerModel, MonotoneInThreads) {
  const MachineModel m;
  WorkStats w{.edges_processed = 1'000'000, .bytes_touched = 1 << 20};
  double prev = 0.0;
  for (const int threads : {1, 8, 32, 72}) {
    const auto e =
        estimate(m, WorkloadSample{.seconds = 1.0, .threads = threads,
                                   .work = w});
    EXPECT_GT(e.cpu_watts, prev);
    prev = e.cpu_watts;
  }
}

TEST(PowerModel, MonotoneInEdgeThroughput) {
  const MachineModel m;
  const auto slow = estimate(
      m, WorkloadSample{1.0, 32, WorkStats{.edges_processed = 1'000'000}});
  const auto fast = estimate(
      m,
      WorkloadSample{1.0, 32, WorkStats{.edges_processed = 1'000'000'000}});
  EXPECT_GT(fast.cpu_watts, slow.cpu_watts);
}

TEST(PowerModel, RamPowerTracksMemoryTraffic) {
  const MachineModel m;
  const auto light = estimate(
      m, WorkloadSample{1.0, 32, WorkStats{.bytes_touched = 1 << 20}});
  const auto heavy = estimate(
      m, WorkloadSample{1.0, 32,
                        WorkStats{.bytes_touched = 60ull << 30}});
  EXPECT_GT(heavy.ram_watts, light.ram_watts);
  EXPECT_LE(heavy.ram_watts, m.ram_peak_w);
}

TEST(PowerModel, CeilingsClampPower) {
  const MachineModel m;
  const auto e = estimate(
      m, WorkloadSample{1.0, 1000,
                        WorkStats{.edges_processed = ~0ull >> 8,
                                  .bytes_touched = ~0ull >> 8}});
  EXPECT_LE(e.cpu_watts, m.cpu_peak_w);
  EXPECT_LE(e.ram_watts, m.ram_peak_w);
}

TEST(PowerModel, SleepBaselineMatchesTableIII) {
  // Table III: "Increase over Sleep" is 2.9-3.9x on the paper's machine.
  // With our calibrated idle power the same workload class (32 threads,
  // GAP-like throughput) must land in that band.
  const MachineModel m;
  const auto active = estimate(
      m, WorkloadSample{0.016, 32,
                        WorkStats{.edges_processed = 30'000'000,
                                  .bytes_touched = 300'000'000}});
  const auto sleep = sleep_baseline(m, 0.016);
  const double ratio = active.total_joules() / sleep.total_joules();
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 4.5);
}

TEST(PowerModel, ZeroDurationZeroEnergy) {
  const auto e = estimate(MachineModel{}, WorkloadSample{});
  EXPECT_DOUBLE_EQ(e.cpu_joules, 0.0);
  EXPECT_DOUBLE_EQ(e.total_joules(), 0.0);
  EXPECT_GT(e.cpu_watts, 0.0);  // instantaneous power is still idle power
}

TEST(PowerModel, NegativeInputsRejected) {
  EXPECT_THROW(estimate(MachineModel{}, WorkloadSample{.seconds = -1.0}),
               EpgsError);
  EXPECT_THROW(
      estimate(MachineModel{}, WorkloadSample{.seconds = 1.0,
                                              .threads = -3}),
      EpgsError);
}

TEST(RaplApi, MeasuresMonotoneEnergy) {
  power_rapl_t ps;
  power_rapl_init(&ps);
  ASSERT_NE(ps.backend, nullptr);
  power_rapl_start(&ps);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  power_rapl_end(&ps);
  EXPECT_GT(ps.seconds, 0.02);
  EXPECT_GE(ps.cpu_j, 0.0);
  EXPECT_GE(ps.ram_j, 0.0);
}

TEST(RaplApi, ModelBackendIntegratesIdlePower) {
  MachineModel m;
  ModelBackend backend(m);
  const double j0 = backend.cpu_energy_j();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const double j1 = backend.cpu_energy_j();
  const double watts = (j1 - j0) / 0.05;
  EXPECT_NEAR(watts, m.cpu_idle_w, m.cpu_idle_w * 0.5);
  EXPECT_GT(backend.ram_energy_j(), 0.0);
}

TEST(RaplApi, DefaultBackendAlwaysAvailable) {
  const auto backend = make_default_backend();
  ASSERT_NE(backend, nullptr);
  EXPECT_GE(backend->cpu_energy_j(), 0.0);
}

TEST(RaplApi, PowercapUnavailableInMissingRoot) {
  EXPECT_FALSE(PowercapBackend::available("/nonexistent/powercap"));
  EXPECT_THROW(PowercapBackend("/nonexistent/powercap"), EpgsError);
}

TEST(RaplApi, PrintDoesNotCrash) {
  power_rapl_t ps;
  power_rapl_init(&ps);
  power_rapl_start(&ps);
  power_rapl_end(&ps);
  power_rapl_print(&ps);  // smoke: formats finite numbers
}

}  // namespace
}  // namespace epgs::power
