#include "harness/runner.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/error.hpp"
#include "systems/common/system.hpp"

namespace epgs::harness {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.graph.kind = GraphSpec::Kind::kKronecker;
  cfg.graph.scale = 7;
  cfg.graph.edgefactor = 8;
  cfg.graph.add_weights = true;
  cfg.systems = {"GAP", "Graph500", "GraphBIG", "GraphMat", "PowerGraph"};
  cfg.algorithms = {Algorithm::kBfs, Algorithm::kSssp};
  cfg.num_roots = 4;
  cfg.threads = 2;
  cfg.validate = true;
  return cfg;
}

TEST(Runner, RunsAllSystemsAndValidates) {
  const auto result = run_experiment(small_config());
  EXPECT_EQ(result.roots.size(), 4u);

  // Every system produced algorithm records for the algorithms it
  // supports; the unsupported combinations are silently absent.
  EXPECT_EQ(result.seconds_of("GAP", phase::kAlgorithm, "BFS").size(), 4u);
  EXPECT_EQ(result.seconds_of("Graph500", phase::kAlgorithm, "BFS").size(),
            4u);
  EXPECT_TRUE(
      result.seconds_of("Graph500", phase::kAlgorithm, "SSSP").empty());
  EXPECT_TRUE(
      result.seconds_of("PowerGraph", phase::kAlgorithm, "BFS").empty());
  EXPECT_EQ(
      result.seconds_of("PowerGraph", phase::kAlgorithm, "SSSP").size(),
      4u);
}

TEST(Runner, ConstructionSamplingMatchesPaper) {
  const auto result = run_experiment(small_config());
  // GAP and GraphMat rebuild per trial (box plots with 32 points in Fig
  // 2); Graph500 "only constructs its graph once".
  EXPECT_EQ(result.seconds_of("GAP", phase::kBuild).size(), 8u);  // 2 algs
  EXPECT_EQ(result.seconds_of("GraphMat", phase::kBuild).size(), 8u);
  EXPECT_EQ(result.seconds_of("Graph500", phase::kBuild).size(), 1u);
  // Fused systems build exactly once too.
  EXPECT_EQ(result.seconds_of("GraphBIG", phase::kBuild).size(), 1u);
}

TEST(Runner, RawLogsParseAsPhaseLogs) {
  const auto result = run_experiment(small_config());
  ASSERT_EQ(result.raw_logs.size(), 5u);
  for (const auto& [system, text] : result.raw_logs) {
    EXPECT_NO_THROW({
      const auto parsed = PhaseLog::parse_log_text(text);
      EXPECT_FALSE(parsed.entries().empty()) << system;
    });
  }
}

TEST(Runner, RecordsCarryWorkCounters) {
  auto cfg = small_config();
  cfg.systems = {"GAP"};
  const auto result = run_experiment(cfg);
  for (const auto& r : result.records) {
    if (r.phase == phase::kAlgorithm) {
      EXPECT_GT(r.work.edges_processed, 0u);
      EXPECT_GE(r.seconds, 0.0);
      EXPECT_EQ(r.threads, 2);
    }
  }
}

TEST(Runner, TrialIndicesAreComplete) {
  auto cfg = small_config();
  cfg.systems = {"GraphMat"};
  cfg.algorithms = {Algorithm::kBfs};
  const auto result = run_experiment(cfg);
  std::set<int> trials;
  for (const auto& r : result.records) {
    if (r.phase == phase::kAlgorithm) trials.insert(r.trial);
  }
  EXPECT_EQ(trials, (std::set<int>{0, 1, 2, 3}));
}

TEST(Runner, PageRankIterationsExposed) {
  ExperimentConfig cfg;
  cfg.graph.kind = GraphSpec::Kind::kKronecker;
  cfg.graph.scale = 6;
  cfg.systems = {"GAP", "GraphMat"};
  cfg.algorithms = {Algorithm::kPageRank};
  cfg.num_roots = 2;
  cfg.threads = 1;
  const auto result = run_experiment(cfg);
  const auto gap_iters = result.iterations_of("GAP", "PageRank");
  const auto gm_iters = result.iterations_of("GraphMat", "PageRank");
  ASSERT_EQ(gap_iters.size(), 2u);
  ASSERT_EQ(gm_iters.size(), 2u);
  // Fig 4: GraphMat's fixpoint criterion needs at least as many
  // iterations as GAP's L1 criterion.
  EXPECT_GE(gm_iters[0], gap_iters[0]);
}

TEST(Runner, EmptyConfigurationsRejected) {
  ExperimentConfig cfg;
  cfg.systems = {};
  cfg.algorithms = {Algorithm::kBfs};
  EXPECT_THROW(run_experiment(cfg), EpgsError);
  cfg.systems = {"GAP"};
  cfg.algorithms = {};
  EXPECT_THROW(run_experiment(cfg), EpgsError);
}

TEST(Runner, FullAlgorithmGridAcrossAllSystems) {
  // Every algorithm (incl. the Section V extensions) on every system
  // (incl. the Ligra extension): record counts must exactly match each
  // system's capability matrix.
  ExperimentConfig cfg;
  cfg.graph.kind = GraphSpec::Kind::kKronecker;
  cfg.graph.scale = 6;
  cfg.graph.edgefactor = 8;
  cfg.graph.add_weights = true;
  cfg.systems = {"Graph500", "GAP",        "GraphBIG",
                 "GraphMat", "PowerGraph", "Ligra"};
  cfg.algorithms = {Algorithm::kBfs,  Algorithm::kSssp,
                    Algorithm::kPageRank, Algorithm::kCdlp,
                    Algorithm::kLcc,  Algorithm::kWcc,
                    Algorithm::kTc,   Algorithm::kBc};
  cfg.num_roots = 2;
  cfg.threads = 1;
  cfg.reconstruct_per_trial = false;
  const auto result = run_experiment(cfg);

  const struct {
    const char* system;
    int algorithms;  // supported count out of the 8 requested
  } expected[] = {
      {"Graph500", 1},  // BFS only
      {"GAP", 6},       // BFS SSSP PR WCC TC BC
      {"GraphBIG", 8},  // everything
      {"GraphMat", 8},  // everything
      {"PowerGraph", 6},  // no BFS, no BC
      {"Ligra", 5},     // BFS SSSP PR WCC BC
  };
  for (const auto& e : expected) {
    const auto secs = result.seconds_of(e.system, phase::kAlgorithm);
    EXPECT_EQ(secs.size(),
              static_cast<std::size_t>(e.algorithms) * cfg.num_roots)
        << e.system;
  }
}

TEST(RunnerCsv, RoundTrip) {
  auto cfg = small_config();
  cfg.systems = {"GAP"};
  cfg.algorithms = {Algorithm::kBfs};
  const auto result = run_experiment(cfg);
  const auto csv = records_to_csv(result.records);
  const auto back = records_from_csv(csv);
  ASSERT_EQ(back.size(), result.records.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].system, result.records[i].system);
    EXPECT_EQ(back[i].phase, result.records[i].phase);
    EXPECT_EQ(back[i].trial, result.records[i].trial);
    EXPECT_NEAR(back[i].seconds, result.records[i].seconds, 1e-9);
    EXPECT_EQ(back[i].work.edges_processed,
              result.records[i].work.edges_processed);
  }
}

TEST(RunnerCsv, HeaderPresent) {
  const auto csv = records_to_csv({});
  EXPECT_EQ(csv.rfind("dataset,system,algorithm", 0), 0u);
  EXPECT_TRUE(records_from_csv(csv).empty());
}

TEST(RunnerCsv, OutcomeColumnRoundTrips) {
  RunRecord ok;
  ok.system = "GAP";
  ok.phase = "run algorithm";
  RunRecord dnf;
  dnf.system = "GraphMat";
  dnf.phase = "run algorithm";
  dnf.outcome = Outcome::kTimeout;
  const auto csv = records_to_csv({ok, dnf});
  EXPECT_NE(csv.find(",outcome"), std::string::npos);
  EXPECT_NE(csv.find(",timeout"), std::string::npos);
  const auto back = records_from_csv(csv);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].outcome, Outcome::kSuccess);
  EXPECT_EQ(back[1].outcome, Outcome::kTimeout);
}

TEST(RunnerCsv, WrongColumnCountRejected) {
  const auto csv = records_to_csv({});
  // 11 fields (the pre-outcome format) must be rejected, not half-parsed.
  EXPECT_THROW(records_from_csv(csv + "d,s,a,1,0,p,0.5,0,0,0,3\n"),
               EpgsError);
  // So must 13.
  EXPECT_THROW(
      records_from_csv(csv + "d,s,a,1,0,p,0.5,0,0,0,3,success,junk\n"),
      EpgsError);
}

TEST(RunnerCsv, MalformedFieldsRejectedWithEpgsError) {
  const auto header = records_to_csv({});
  EXPECT_THROW(
      records_from_csv(header + "d,s,a,NaNthreads,0,p,0.5,0,0,0,,success\n"),
      EpgsError);
  EXPECT_THROW(
      records_from_csv(header + "d,s,a,1,0,p,notasecond,0,0,0,,success\n"),
      EpgsError);
  EXPECT_THROW(
      records_from_csv(header + "d,s,a,1,0,p,0.5,0,0,0,,exploded\n"),
      EpgsError);
}

TEST(RunnerCsv, ForeignHeaderRejected) {
  EXPECT_THROW(records_from_csv("a,b,c\n1,2,3\n"), EpgsError);
  EXPECT_THROW(records_from_csv(""), EpgsError);
}

}  // namespace
}  // namespace epgs::harness
