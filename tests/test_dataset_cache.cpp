// The content-addressed dataset cache, the packed snapshot format, the
// mmap loaders, and the spec-level pipeline above them.
#include "graph/dataset_cache.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "core/error.hpp"
#include "core/mapped_file.hpp"
#include "graph/snap_io.hpp"
#include "harness/dataset_pipeline.hpp"
#include "test_util.hpp"

namespace epgs {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() : path_(fs::temp_directory_path() /
                    ("epgs_cache_" + std::to_string(::getpid()) + "_" +
                     std::to_string(counter_++))) {
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  [[nodiscard]] const fs::path& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  fs::path path_;
};

EdgeList sample_graph(bool weighted = true) {
  auto el = test::line_graph(9, weighted);
  el.num_vertices = 11;  // isolated trailing vertices must survive
  return el;
}

/// Forces the buffered-read fallback for the duration of a scope.
struct BufferedScope {
  BufferedScope() { MappedFile::force_buffered(true); }
  ~BufferedScope() { MappedFile::force_buffered(false); }
};

TEST(MappedFileTest, MapsAndFallsBackIdentically) {
  TempDir tmp;
  const auto p = tmp.path() / "data.txt";
  std::ofstream(p) << "hello mapped world";
  {
    const MappedFile mapped(p);
    EXPECT_TRUE(mapped.is_mapped());
    EXPECT_EQ(mapped.view(), "hello mapped world");
  }
  {
    BufferedScope forced;
    const MappedFile buffered(p);
    EXPECT_FALSE(buffered.is_mapped());
    EXPECT_EQ(buffered.view(), "hello mapped world");
  }
}

TEST(MappedFileTest, EmptyFileGivesEmptyView) {
  TempDir tmp;
  const auto p = tmp.path() / "empty";
  std::ofstream{p};
  const MappedFile file(p);
  EXPECT_EQ(file.size(), 0u);
  EXPECT_EQ(file.view(), "");
}

TEST(MappedFileTest, MissingFileThrows) {
  EXPECT_THROW(MappedFile("/nonexistent/epgs/file"), EpgsError);
}

TEST(PackedSnapshot, RoundTripPreservesEverythingIncludingOrder) {
  TempDir tmp;
  const auto p = tmp.path() / "edges.bin";
  const EdgeList el = sample_graph(true);
  write_packed_snapshot(p, el);
  const EdgeList back = read_packed_snapshot(p);
  EXPECT_EQ(back.num_vertices, el.num_vertices);
  EXPECT_EQ(back.weighted, el.weighted);
  EXPECT_EQ(back.directed, el.directed);
  EXPECT_EQ(back.edges, el.edges);  // exact order, not just multiset
}

TEST(PackedSnapshot, TruncationDetected) {
  TempDir tmp;
  const auto p = tmp.path() / "edges.bin";
  write_packed_snapshot(p, sample_graph());
  fs::resize_file(p, fs::file_size(p) - 5);  // torn write
  EXPECT_THROW(read_packed_snapshot(p), EpgsError);
}

TEST(PackedSnapshot, BadMagicDetected) {
  TempDir tmp;
  const auto p = tmp.path() / "edges.bin";
  write_packed_snapshot(p, sample_graph());
  std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
  f.write("XXXX", 4);
  f.close();
  EXPECT_THROW(read_packed_snapshot(p), EpgsError);
}

TEST(DatasetCacheTest, MissMaterializeHit) {
  TempDir tmp;
  DatasetCache cache(tmp.path());
  const EdgeList el = sample_graph();

  EXPECT_FALSE(cache.lookup("fp-1").has_value());
  EXPECT_EQ(cache.stats().misses, 1u);

  const CacheEntry entry = cache.materialize("fp-1", "g", el);
  EXPECT_EQ(cache.stats().materializations, 1u);
  EXPECT_EQ(entry.num_vertices, el.num_vertices);
  EXPECT_EQ(entry.num_edges, el.num_edges());
  EXPECT_EQ(entry.files.files.size(), 7u);
  for (const auto& [fmt, path] : entry.files.files) {
    EXPECT_TRUE(fs::exists(path)) << format_name(fmt);
  }

  const auto hit = cache.lookup("fp-1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(hit->dir, entry.dir);
  const EdgeList back = read_packed_snapshot(hit->snapshot);
  EXPECT_EQ(back.edges, el.edges);
}

TEST(DatasetCacheTest, FingerprintMismatchInvalidates) {
  TempDir tmp;
  DatasetCache cache(tmp.path());
  const CacheEntry entry = cache.materialize("fp-a", "g", sample_graph());

  // Simulate an FNV collision / stale scheme: same directory, different
  // full fingerprint string.
  {
    std::ofstream meta(entry.dir / "meta", std::ios::trunc);
    meta << "epgs-dataset-cache-v1\nfingerprint OTHER\nname g\nnv 11\n"
            "ne 16\nweighted 1\ndirected 0\nend\n";
  }
  EXPECT_FALSE(cache.lookup("fp-a").has_value());
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_FALSE(fs::exists(entry.dir)) << "corrupt entry must be removed";
}

TEST(DatasetCacheTest, TruncatedSnapshotInvalidates) {
  TempDir tmp;
  DatasetCache cache(tmp.path());
  const CacheEntry entry = cache.materialize("fp-b", "g", sample_graph());
  fs::resize_file(entry.snapshot, fs::file_size(entry.snapshot) - 1);
  EXPECT_FALSE(cache.lookup("fp-b").has_value());
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(DatasetCacheTest, MissingFormatFileInvalidates) {
  TempDir tmp;
  DatasetCache cache(tmp.path());
  const CacheEntry entry = cache.materialize("fp-c", "g", sample_graph());
  fs::remove(entry.files.path(GraphFormat::kGapSg));
  EXPECT_FALSE(cache.lookup("fp-c").has_value());
  EXPECT_EQ(cache.stats().invalidations, 1u);
  // And the next materialize repairs it.
  const CacheEntry again = cache.materialize("fp-c", "g", sample_graph());
  EXPECT_TRUE(fs::exists(again.files.path(GraphFormat::kGapSg)));
}

TEST(DatasetCacheTest, LeftoverStagingDirIsHarmless) {
  TempDir tmp;
  DatasetCache cache(tmp.path());
  // A crashed writer left a staging dir behind.
  fs::create_directories(tmp.path() / ".tmp-deadbeef-123");
  EXPECT_FALSE(cache.lookup("fp-d").has_value());
  const CacheEntry entry = cache.materialize("fp-d", "g", sample_graph());
  EXPECT_TRUE(cache.lookup("fp-d").has_value());
  EXPECT_TRUE(fs::exists(entry.snapshot));
}

TEST(DatasetCacheTest, ContentHashIsStableAndDistinguishes) {
  EXPECT_EQ(content_hash_hex("abc"), content_hash_hex("abc"));
  EXPECT_NE(content_hash_hex("abc"), content_hash_hex("abd"));
  EXPECT_EQ(content_hash_hex("").size(), 16u);
}

/// Byte-identical loader equivalence: every format must parse to the same
/// edge list whether the file arrives via mmap or the buffered fallback.
class LoaderEquivalence : public ::testing::TestWithParam<GraphFormat> {};

TEST_P(LoaderEquivalence, MmapAndBufferedAgree) {
  const GraphFormat fmt = GetParam();
  TempDir tmp;
  const EdgeList el = sample_graph(true);
  const auto ds = homogenize(el, "eq", tmp.path());
  const auto& p = ds.path(fmt);

  const auto read_one = [&]() -> EdgeList {
    switch (fmt) {
      case GraphFormat::kSnapText: return read_snap_file(p);
      case GraphFormat::kGraph500Bin: return read_graph500_bin(p);
      case GraphFormat::kGapSg: return read_gap_sg(p);
      case GraphFormat::kGraphMatMtx: return read_graphmat_mtx(p);
      case GraphFormat::kGraphBigCsv: return read_graphbig_csv(p);
      case GraphFormat::kPowerGraphTsv: return read_powergraph_tsv(p);
      case GraphFormat::kLigraAdj: return read_ligra_adj(p);
    }
    throw std::logic_error("unreachable");
  };

  const EdgeList mapped = read_one();
  EdgeList buffered;
  {
    BufferedScope forced;
    buffered = read_one();
  }
  EXPECT_EQ(mapped.num_vertices, buffered.num_vertices);
  EXPECT_EQ(mapped.weighted, buffered.weighted);
  EXPECT_EQ(mapped.edges, buffered.edges);
}

INSTANTIATE_TEST_SUITE_P(
    AllFormats, LoaderEquivalence,
    ::testing::Values(GraphFormat::kSnapText, GraphFormat::kGraph500Bin,
                      GraphFormat::kGapSg, GraphFormat::kGraphMatMtx,
                      GraphFormat::kGraphBigCsv, GraphFormat::kPowerGraphTsv,
                      GraphFormat::kLigraAdj),
    [](const auto& info) {
      std::string name(format_name(info.param));
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// --- the spec-level pipeline ------------------------------------------

TEST(DatasetPipeline, ColdThenWarmSkipsGeneratorAndHomogenizer) {
  TempDir tmp;
  harness::DatasetOptions opts;
  opts.cache_dir = tmp.path().string();

  harness::GraphSpec spec;
  spec.kind = harness::GraphSpec::Kind::kKronecker;
  spec.scale = 6;
  spec.edgefactor = 4;

  harness::reset_pipeline_stats();
  const auto cold = harness::prepare_dataset(spec, opts);
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_EQ(harness::pipeline_stats().generator_runs, 1u);
  EXPECT_EQ(harness::pipeline_stats().homogenize_runs, 1u);
  EXPECT_EQ(harness::pipeline_stats().cache_hits, 0u);

  const auto warm = harness::prepare_dataset(spec, opts);
  EXPECT_TRUE(warm.cache_hit);
  // The whole point: a warm run re-enters neither the generators nor the
  // homogenizer.
  EXPECT_EQ(harness::pipeline_stats().generator_runs, 1u);
  EXPECT_EQ(harness::pipeline_stats().homogenize_runs, 1u);
  EXPECT_EQ(harness::pipeline_stats().cache_hits, 1u);
  EXPECT_EQ(harness::pipeline_stats().snapshot_loads, 1u);

  // Warm edges are exactly the cold edges, in order.
  EXPECT_EQ(warm.edges.edges, cold.edges.edges);
  EXPECT_EQ(warm.edges.num_vertices, cold.edges.num_vertices);
}

TEST(DatasetPipeline, FingerprintCoversParamsAndPreprocessing) {
  harness::GraphSpec a;
  a.kind = harness::GraphSpec::Kind::kKronecker;
  a.scale = 8;

  harness::GraphSpec b = a;
  EXPECT_EQ(harness::spec_fingerprint(a), harness::spec_fingerprint(b));
  b.scale = 9;
  EXPECT_NE(harness::spec_fingerprint(a), harness::spec_fingerprint(b));
  b = a;
  b.seed ^= 1;
  EXPECT_NE(harness::spec_fingerprint(a), harness::spec_fingerprint(b));
  b = a;
  b.symmetrize = !b.symmetrize;
  EXPECT_NE(harness::spec_fingerprint(a), harness::spec_fingerprint(b));
  b = a;
  b.add_weights = true;
  EXPECT_NE(harness::spec_fingerprint(a), harness::spec_fingerprint(b));
}

TEST(DatasetPipeline, SnapFileFingerprintFollowsContentNotPath) {
  TempDir tmp;
  const EdgeList el = sample_graph(false);
  const auto p1 = tmp.path() / "a.snap";
  const auto p2 = tmp.path() / "b.snap";
  write_snap_file(p1, el);
  write_snap_file(p2, el);

  harness::GraphSpec s1;
  s1.kind = harness::GraphSpec::Kind::kSnapFile;
  s1.path = p1.string();
  harness::GraphSpec s2 = s1;
  s2.path = p2.string();
  // Same bytes, different paths: same fingerprint.
  EXPECT_EQ(harness::spec_fingerprint(s1), harness::spec_fingerprint(s2));

  // Different bytes, same path: different fingerprint.
  write_snap_file(p2, test::line_graph(4));
  EXPECT_NE(harness::spec_fingerprint(s1), harness::spec_fingerprint(s2));
}

}  // namespace
}  // namespace epgs
