// The shared kernel runtime (KernelRun) and its per-iteration telemetry:
// timeline rows attach to the "run algorithm" phase on every system,
// round-trip through the text log grammar and the fork-isolation pipe,
// land in the --iter-trace JSONL sidecar, and every capability-advertised
// iterative kernel is checkpointable (cancelled mid-kernel -> resumes
// from the snapshot) while single-pass kernels stay snapshot-free.
#include "systems/common/kernel_run.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/cancellation.hpp"
#include "core/error.hpp"
#include "core/parallel.hpp"
#include "harness/analysis.hpp"
#include "harness/runner.hpp"
#include "systems/common/fault_injection.hpp"
#include "systems/common/registry.hpp"
#include "test_util.hpp"

namespace epgs {
namespace {

namespace fs = std::filesystem;

const char* const kAllSystems[] = {"GAP",      "Graph500", "GraphBIG",
                                   "GraphMat", "Ligra",    "PowerGraph"};

/// Build `system` over `el` and return it ready to run.
std::unique_ptr<System> built(const std::string& system,
                              const EdgeList& el) {
  auto sys = make_system(system);
  sys->set_edges(el);
  sys->build();
  return sys;
}

/// The "run algorithm" phase entry the last kernel logged.
const PhaseEntry& algorithm_entry(const System& sys) {
  const auto& entries = sys.log().entries();
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    if (it->name == phase::kAlgorithm) return *it;
  }
  throw EpgsError("no run-algorithm phase logged");
}

/// Timeline invariant shared by every kernel: dense 0-based iteration
/// indices and non-negative per-iteration times.
void expect_dense_timeline(const std::vector<IterRecord>& tl,
                           const std::string& what) {
  for (std::size_t i = 0; i < tl.size(); ++i) {
    EXPECT_EQ(tl[i].iter, i) << what << ": timeline indices not dense";
    EXPECT_GE(tl[i].seconds, 0.0) << what;
  }
}

// --- telemetry rows ------------------------------------------------------

TEST(KernelRunTelemetry, PageRankTimelineMatchesIterationsEverySystem) {
  const EdgeList el = test::line_graph(96);
  for (const std::string system :
       {"GAP", "Ligra", "GraphMat", "GraphBIG", "PowerGraph"}) {
    auto sys = built(system, el);
    const auto r = sys->pagerank();
    const auto& entry = algorithm_entry(*sys);
    ASSERT_EQ(entry.timeline.size(),
              static_cast<std::size_t>(r.iterations))
        << system << ": one telemetry row per iteration";
    expect_dense_timeline(entry.timeline, system);
    // Systems with an epsilon stopping criterion report the L1 residual
    // every iteration; GraphMat iterates until no rank changes and has
    // no residual notion.
    const bool expects_residual = system != "GraphMat";
    for (const auto& row : entry.timeline) {
      EXPECT_EQ(row.has_residual(), expects_residual) << system;
    }
  }
}

TEST(KernelRunTelemetry, BfsTimelineTracksFrontierAndEdges) {
  ThreadScope scope(1);
  const EdgeList el = test::line_graph(64);
  for (const std::string system :
       {"GAP", "Graph500", "Ligra", "GraphMat", "GraphBIG"}) {
    auto sys = built(system, el);
    (void)sys->bfs(0);
    const auto& tl = algorithm_entry(*sys).timeline;
    ASSERT_GE(tl.size(), 3u) << system;
    expect_dense_timeline(tl, system);
    std::uint64_t edges = 0;
    for (const auto& row : tl) {
      EXPECT_FALSE(row.has_residual()) << system << ": BFS has no residual";
      edges += row.edges;
    }
    EXPECT_GT(edges, 0u) << system << ": no edge deltas recorded";
  }
}

TEST(KernelRunTelemetry, TimelineRoundTripsThroughLogText) {
  auto sys = built("GAP", test::line_graph(96));
  (void)sys->pagerank();
  const auto& before = algorithm_entry(*sys).timeline;
  ASSERT_FALSE(before.empty());

  const PhaseLog parsed = PhaseLog::parse_log_text(sys->log().to_log_text());
  const auto entry = parsed.find(phase::kAlgorithm);
  ASSERT_TRUE(entry.has_value());
  ASSERT_EQ(entry->timeline.size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    const auto& a = before[i];
    const auto& b = entry->timeline[i];
    EXPECT_EQ(b.iter, a.iter);
    EXPECT_EQ(b.frontier, a.frontier);
    EXPECT_EQ(b.edges, a.edges);
    EXPECT_NEAR(b.seconds, a.seconds, 1e-6 + 1e-6 * a.seconds);
    ASSERT_EQ(b.has_residual(), a.has_residual());
    if (a.has_residual()) {
      EXPECT_NEAR(b.residual, a.residual,
                  1e-6 + 1e-6 * std::abs(a.residual));
    }
  }
}

// --- checkpointable-kernel sweep -----------------------------------------
//
// The regression bar behind the KernelRun refactor: every iterative
// kernel a system advertises must leave a resumable snapshot when
// cancelled mid-kernel and continue from it — including the kernels that
// previously only polled bare cancellation (Ligra SSSP and friends).

class KernelCheckpointSweep : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("epgs_krun_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    fault::disarm_cancel_at_iteration();
    fs::remove_all(dir_);
  }

  [[nodiscard]] CheckpointConfig config(const std::string& key) const {
    CheckpointConfig cfg;
    cfg.dir = dir_.string();
    cfg.unit_key = key;
    cfg.fingerprint = "fp";
    cfg.every_iterations = 1;
    return cfg;
  }

  /// Cancel `alg` on `system` at completed iteration 1, assert a snapshot
  /// was left, then resume it on a fresh instance and assert the resume
  /// actually started from the snapshot.
  template <typename Alg>
  void expect_kill_resume(const std::string& system, const EdgeList& el,
                          const std::string& alg_name, Alg&& alg) {
    const std::string key = system + "|" + alg_name;
    {
      auto sys = built(system, el);
      CancellationToken token;
      sys->set_cancellation(&token);
      CheckpointSession session(config(key));
      sys->set_checkpoint_session(&session);
      fault::arm_cancel_at_iteration({system, /*at_iteration=*/1});
      EXPECT_THROW(alg(*sys), CancelledError) << key;
      fault::disarm_cancel_at_iteration();
      session.detach();
      EXPECT_TRUE(session.snapshot_exists())
          << key << " left no snapshot behind";
    }
    auto sys = built(system, el);
    CheckpointSession session(config(key));
    sys->set_checkpoint_session(&session);
    EXPECT_NO_THROW(alg(*sys)) << key;
    EXPECT_EQ(session.resumed_from(), 1) << key << " did not resume";
    EXPECT_FALSE(session.snapshot_exists())
        << key << " must delete the snapshot after completing";
  }

  fs::path dir_;
};

TEST_F(KernelCheckpointSweep, EveryAdvertisedIterativeKernelResumes) {
  ThreadScope scope(1);
  const EdgeList el = test::line_graph(96, /*weighted=*/true);
  for (const std::string system : kAllSystems) {
    const Capabilities caps = make_system(system)->capabilities();
    if (caps.bfs) {
      expect_kill_resume(system, el, "bfs",
                         [](System& s) { (void)s.bfs(0); });
    }
    if (caps.sssp) {
      expect_kill_resume(system, el, "sssp",
                         [](System& s) { (void)s.sssp(0); });
    }
    if (caps.pagerank) {
      expect_kill_resume(system, el, "pagerank",
                         [](System& s) { (void)s.pagerank(); });
    }
    if (caps.cdlp) {
      expect_kill_resume(system, el, "cdlp",
                         [](System& s) { (void)s.cdlp(); });
    }
    if (caps.wcc) {
      expect_kill_resume(system, el, "wcc",
                         [](System& s) { (void)s.wcc(); });
    }
    if (caps.bc) {
      expect_kill_resume(system, el, "bc",
                         [](System& s) { (void)s.bc(0); });
    }
  }
}

TEST_F(KernelCheckpointSweep, SinglePassKernelsLeaveNoSnapshot) {
  // LCC and TC are single-pass: they run to completion under a session
  // without registering iteration state or leaving snapshots behind.
  const EdgeList el = test::line_graph(32);
  for (const std::string system : kAllSystems) {
    const Capabilities caps = make_system(system)->capabilities();
    for (const bool is_lcc : {true, false}) {
      if (is_lcc ? !caps.lcc : !caps.tc) continue;
      const std::string key = system + (is_lcc ? "|lcc" : "|tc");
      auto sys = built(system, el);
      CheckpointSession session(config(key));
      sys->set_checkpoint_session(&session);
      if (is_lcc) {
        EXPECT_NO_THROW((void)sys->lcc()) << key;
      } else {
        EXPECT_NO_THROW((void)sys->tc()) << key;
      }
      EXPECT_FALSE(session.snapshot_exists()) << key;
    }
  }
}

// --- --iter-trace plumbing ----------------------------------------------

harness::ExperimentConfig trace_config() {
  harness::ExperimentConfig cfg;
  cfg.graph.kind = harness::GraphSpec::Kind::kKronecker;
  cfg.graph.scale = 6;
  cfg.graph.edgefactor = 4;
  cfg.systems = {"GAP"};
  cfg.algorithms = {harness::Algorithm::kPageRank};
  cfg.num_roots = 2;
  cfg.threads = 2;
  return cfg;
}

TEST(IterTrace, TimelinesReachRunRecords) {
  const auto result = harness::run_experiment(trace_config());
  int kernel_records = 0;
  for (const auto& r : result.records) {
    if (r.phase != phase::kAlgorithm || r.outcome != Outcome::kSuccess) {
      continue;
    }
    ++kernel_records;
    ASSERT_FALSE(r.timeline.empty()) << r.system << "/" << r.algorithm;
    EXPECT_EQ(std::to_string(r.timeline.size()), r.extra.at("iterations"));
  }
  EXPECT_EQ(kernel_records, 2);
}

TEST(IterTrace, TimelinesSurviveForkIsolation) {
  auto cfg = trace_config();
  // BFS rows carry a NaN residual, so this also proves the pipe grammar
  // round-trips "nan" (istream num_get rejects it; the parser must not).
  cfg.algorithms = {harness::Algorithm::kPageRank, harness::Algorithm::kBfs};
  cfg.supervisor.isolate = true;
  const auto result = harness::run_experiment(cfg);
  int kernel_records = 0;
  for (const auto& r : result.records) {
    if (r.phase != phase::kAlgorithm || r.outcome != Outcome::kSuccess) {
      continue;
    }
    ++kernel_records;
    ASSERT_FALSE(r.timeline.empty())
        << r.system << "/" << r.algorithm
        << ": timeline lost crossing the isolation pipe";
    const auto iters = r.extra.find("iterations");
    if (iters != r.extra.end()) {  // BFS results report no iteration count
      EXPECT_EQ(std::to_string(r.timeline.size()), iters->second);
    }
    if (r.algorithm == "BFS") {
      EXPECT_FALSE(r.timeline.front().has_residual());
    }
  }
  EXPECT_EQ(kernel_records, 4) << "an isolated unit was misclassified";
}

TEST(IterTrace, SidecarJsonlMatchesIterationCounts) {
  const fs::path dir = fs::temp_directory_path() /
                       ("epgs_trace_" + std::to_string(::getpid()));
  auto cfg = trace_config();
  cfg.iter_trace_dir = dir.string();
  const auto result = harness::run_experiment(cfg);
  EXPECT_TRUE(result.iter_trace_warning.empty())
      << result.iter_trace_warning;

  std::size_t expected_rows = 0;
  for (const auto& r : result.records) expected_rows += r.timeline.size();
  ASSERT_GT(expected_rows, 0u);

  fs::path sidecar;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().filename().string().rfind("itertrace-", 0) == 0) {
      sidecar = e.path();
    }
  }
  ASSERT_FALSE(sidecar.empty()) << "no itertrace-*.jsonl written";

  std::ifstream in(sidecar);
  std::size_t rows = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++rows;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"system\":\"GAP\""), std::string::npos);
    EXPECT_NE(line.find("\"iter\":"), std::string::npos);
    EXPECT_NE(line.find("\"residual\":"), std::string::npos);
  }
  EXPECT_EQ(rows, expected_rows)
      << "sidecar rows must match in-memory timeline rows";
  fs::remove_all(dir);
}

TEST(IterTrace, TrajectoryAveragesAcrossTrials) {
  harness::ExperimentResult result;
  for (int trial = 0; trial < 2; ++trial) {
    harness::RunRecord r;
    r.dataset = "d";
    r.system = "GAP";
    r.algorithm = "PageRank";
    r.trial = trial;
    r.phase = std::string(phase::kAlgorithm);
    r.timeline.push_back(
        IterRecord{0, 0.5, 10, 100, trial == 0 ? 0.4 : 0.2});
    if (trial == 0) {
      // Uneven lengths: iteration 1 has a single contributing sample.
      IterRecord row{1, 0.25, 5, 50,
                     std::numeric_limits<double>::quiet_NaN()};
      r.timeline.push_back(row);
    }
    result.records.push_back(std::move(r));
  }

  const auto traj =
      harness::iteration_trajectory(result, "GAP", "PageRank");
  ASSERT_EQ(traj.size(), 2u);
  EXPECT_EQ(traj[0].samples, 2);
  EXPECT_DOUBLE_EQ(traj[0].mean_seconds, 0.5);
  EXPECT_DOUBLE_EQ(traj[0].mean_frontier, 10.0);
  EXPECT_DOUBLE_EQ(traj[0].mean_residual, 0.3);
  EXPECT_EQ(traj[1].samples, 1);
  EXPECT_FALSE(traj[1].has_residual());

  const std::string csv = harness::trajectories_to_csv(result);
  EXPECT_EQ(csv.compare(0, 6, "system"), 0);
  EXPECT_NE(csv.find("GAP,PageRank,0,2,"), std::string::npos);
  // Absent residual renders as an empty trailing field.
  EXPECT_NE(csv.find(",\n"), std::string::npos);
}

}  // namespace
}  // namespace epgs
