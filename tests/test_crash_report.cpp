// Crash forensics: a fork child dying on SIGSEGV/SIGABRT leaves a
// parseable post-mortem report — signal, fault context notes, a
// non-empty backtrace — and identical crash sites fingerprint
// identically, while garbage or absent files parse to nullopt.
#include "core/crash_report.hpp"

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

namespace epgs::crash {
namespace {

namespace fs = std::filesystem;

class CrashReportDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("epgs_crash_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { if (!::getenv("EPGS_KEEP_CRASH")) fs::remove_all(dir_); }

  [[nodiscard]] fs::path report(const std::string& name) const {
    return dir_ / name;
  }

  fs::path dir_;
};

/// Deliberate out-of-line crash site so both children die at the same
/// stack frame and the ASLR-stable fingerprints can be compared.
[[gnu::noinline]] void crash_with_null_store() {
  volatile int* p = nullptr;
  *p = 42;  // SIGSEGV, fault address 0
}

/// Fork a child that arms forensics on `path`, records context notes,
/// and dies via `die`. Returns the child's terminating signal (0 when it
/// exited normally instead — a test failure).
template <typename Die>
int crash_in_child(const fs::path& path, Die&& die) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    if (!arm(path)) _exit(9);
    // Context notes only register once armed (a disarmed process pays a
    // single atomic load) — same order the supervisor's child uses.
    note_phase("GAP", "bfs");
    note_iteration(7);
    note_fault(0, "phase-fault segv GAP/bfs");
    die();
    _exit(0);  // unreachable when `die` actually dies
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  return WIFSIGNALED(status) ? WTERMSIG(status) : 0;
}

TEST_F(CrashReportDir, SegvChildLeavesParseableReportWithBacktrace) {
  const auto path = report("segv.crash");
  ASSERT_EQ(crash_in_child(path, crash_with_null_store), SIGSEGV)
      << "the handler must re-raise with SIG_DFL so the parent sees the "
         "true WTERMSIG";

  const auto rep = read_report(path);
  ASSERT_TRUE(rep.has_value());
  EXPECT_EQ(rep->signal, SIGSEGV);
  EXPECT_EQ(rep->signal_name, "SIGSEGV");
  EXPECT_EQ(rep->phase, "GAP/bfs");
  EXPECT_EQ(rep->iteration, 7);
  ASSERT_FALSE(rep->faults.empty());
  EXPECT_EQ(rep->faults[0], "phase-fault segv GAP/bfs");
  EXPECT_FALSE(rep->backtrace.empty())
      << "a SIGSEGV report without a stack is useless for triage";
  ASSERT_EQ(rep->fingerprint.size(), 16u);
  EXPECT_EQ(rep->fingerprint.find_first_not_of("0123456789abcdef"),
            std::string::npos);
}

TEST_F(CrashReportDir, AbortChildReportsSigabrt) {
  const auto path = report("abrt.crash");
  ASSERT_EQ(crash_in_child(path, [] { std::abort(); }), SIGABRT);

  const auto rep = read_report(path);
  ASSERT_TRUE(rep.has_value());
  EXPECT_EQ(rep->signal, SIGABRT);
  EXPECT_EQ(rep->signal_name, "SIGABRT");
  EXPECT_FALSE(rep->backtrace.empty());
}

TEST_F(CrashReportDir, IdenticalCrashSitesFingerprintIdentically) {
  const auto a = report("a.crash");
  const auto b = report("b.crash");
  // One call site for both crashes: the fingerprint hashes the whole
  // stack, so two *different* call sites would rightly differ.
  for (const auto& path : {a, b}) {
    ASSERT_EQ(crash_in_child(path, crash_with_null_store), SIGSEGV);
  }

  const auto ra = read_report(a);
  const auto rb = read_report(b);
  ASSERT_TRUE(ra.has_value());
  ASSERT_TRUE(rb.has_value());
  EXPECT_EQ(ra->fingerprint, rb->fingerprint)
      << "same crash site must dedup under one fingerprint";
}

TEST_F(CrashReportDir, MissingEmptyAndGarbageFilesParseToNullopt) {
  EXPECT_FALSE(read_report(report("absent.crash")).has_value());

  const auto empty = report("empty.crash");
  std::ofstream(empty).flush();
  EXPECT_FALSE(read_report(empty).has_value())
      << "an empty file is a SIGKILL (handler never ran), not a report";

  const auto garbage = report("garbage.crash");
  std::ofstream(garbage) << "this is not a crash report\nsignal 11\n";
  EXPECT_FALSE(read_report(garbage).has_value());
}

TEST_F(CrashReportDir, ArmFailureLeavesProcessDisarmedNotBroken) {
  // Forensics must never turn an unopenable report path into a trial
  // failure: arm() reports false and the process stays disarmed.
  const pid_t pid = ::fork();
  if (pid == 0) {
    const bool ok = arm("/nonexistent-dir-epgs/report.crash");
    _exit(ok || armed() ? 1 : 0);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(CrashReportNames, SignalNamesAndFingerprintStability) {
  EXPECT_EQ(signal_name(SIGSEGV), "SIGSEGV");
  EXPECT_EQ(signal_name(SIGABRT), "SIGABRT");
  EXPECT_EQ(signal_name(SIGBUS), "SIGBUS");

  // The fingerprint hashes only the ASLR-stable module+offset text, so
  // differing absolute addresses collapse to one fingerprint...
  const std::vector<std::string> run1 = {
      "./epg(+0x1234) [0x55e0aaaa1234]", "libc.so.6(+0xabcd) [0x7f001abcd]"};
  const std::vector<std::string> run2 = {
      "./epg(+0x1234) [0x561133331234]", "libc.so.6(+0xabcd) [0x7f113abcd]"};
  EXPECT_EQ(stack_fingerprint(run1), stack_fingerprint(run2));

  // ...while a different frame changes it.
  const std::vector<std::string> other = {
      "./epg(+0x9999) [0x55e0aaaa9999]", "libc.so.6(+0xabcd) [0x7f001abcd]"};
  EXPECT_NE(stack_fingerprint(run1), stack_fingerprint(other));
}

}  // namespace
}  // namespace epgs::crash
