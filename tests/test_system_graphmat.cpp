// GraphMat-specific behaviour: DCSR storage, the SpMV vertex-program
// engine, and the infinity-norm PageRank stopping criterion.
#include "systems/graphmat/graphmat_system.hpp"

#include <gtest/gtest.h>

#include "graph/csr.hpp"
#include "systems/common/reference.hpp"
#include "systems/graphmat/dcsr.hpp"
#include "test_util.hpp"

namespace epgs::systems {
namespace {

using graphmat_detail::DCSR;

TEST(Dcsr, OnlyNonEmptyRowsStored) {
  EdgeList el;
  el.num_vertices = 100;
  el.edges = {Edge{5, 6, 1.0f}, Edge{5, 7, 1.0f}, Edge{90, 5, 1.0f}};
  const auto m = DCSR::from_edges(el, /*transpose=*/false);
  EXPECT_EQ(m.num_vertices(), 100u);
  EXPECT_EQ(m.num_nonzeros(), 3u);
  EXPECT_EQ(m.num_rows(), 2u);  // rows 5 and 90 only
  EXPECT_EQ(m.row_id(0), 5u);
  EXPECT_EQ(m.row_id(1), 90u);
  EXPECT_EQ(m.row_cols(0).size(), 2u);
}

TEST(Dcsr, FindRow) {
  EdgeList el;
  el.num_vertices = 10;
  el.edges = {Edge{2, 3, 1.0f}, Edge{8, 1, 1.0f}};
  const auto m = DCSR::from_edges(el, false);
  EXPECT_EQ(m.find_row(2), 0u);
  EXPECT_EQ(m.find_row(8), 1u);
  EXPECT_EQ(m.find_row(3), DCSR::npos);
  EXPECT_EQ(m.find_row(9), DCSR::npos);
}

TEST(Dcsr, TransposeIsInAdjacency) {
  EdgeList el;
  el.num_vertices = 4;
  el.edges = {Edge{0, 3, 1.0f}, Edge{1, 3, 1.0f}, Edge{2, 0, 1.0f}};
  const auto t = DCSR::from_edges(el, /*transpose=*/true);
  const auto row3 = t.find_row(3);
  ASSERT_NE(row3, DCSR::npos);
  const auto cols = t.row_cols(row3);
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_EQ(cols[0], 0u);  // sorted sources
  EXPECT_EQ(cols[1], 1u);
}

TEST(Dcsr, WeightsTravelWithColumns) {
  EdgeList el;
  el.num_vertices = 3;
  el.weighted = true;
  el.edges = {Edge{0, 2, 9.0f}, Edge{0, 1, 4.0f}};
  const auto m = DCSR::from_edges(el, false);
  ASSERT_TRUE(m.weighted());
  const auto cols = m.row_cols(0);
  const auto vals = m.row_vals(0);
  EXPECT_EQ(cols[0], 1u);
  EXPECT_FLOAT_EQ(vals[0], 4.0f);
  EXPECT_EQ(cols[1], 2u);
  EXPECT_FLOAT_EQ(vals[1], 9.0f);
}

TEST(Dcsr, EmptyMatrix) {
  EdgeList el;
  el.num_vertices = 5;
  const auto m = DCSR::from_edges(el, false);
  EXPECT_EQ(m.num_rows(), 0u);
  EXPECT_EQ(m.num_nonzeros(), 0u);
  EXPECT_GT(m.bytes(), 0u);  // offsets array exists
}

TEST(GraphMatSystem, BfsDepthsViaSpmv) {
  GraphMatSystem sys;
  sys.set_edges(test::line_graph(6));
  sys.build();
  const auto r = sys.bfs(0);
  EXPECT_EQ(r.levels(), (std::vector<vid_t>{0, 1, 2, 3, 4, 5}));
  // The min-sender tie-break makes parents deterministic.
  EXPECT_EQ(r.parent, (std::vector<vid_t>{0, 0, 1, 2, 3, 4}));
}

TEST(GraphMatSystem, PageRankIgnoresEpsilonAndRunsToFixpoint) {
  // "with GraphMat there is no computation of |p_k(i) - p_k(i-1)|" — a
  // huge epsilon must not stop it early.
  GraphMatSystem sys;
  sys.set_edges(test::pagerank_graph());
  sys.build();
  PageRankParams loose;
  loose.epsilon = 1.0;  // would stop the others after one iteration
  const auto pr_loose = sys.pagerank(loose);
  PageRankParams tight;
  tight.epsilon = 1e-12;
  const auto pr_tight = sys.pagerank(tight);
  EXPECT_EQ(pr_loose.iterations, pr_tight.iterations)
      << "GraphMat's stopping criterion must not depend on epsilon";
  EXPECT_GT(pr_loose.iterations, 3);
}

TEST(GraphMatSystem, PageRankIteratesAtLeastAsLongAsReference) {
  // The infinity-norm-zero criterion is strictly stricter than the L1
  // epsilon criterion — the mechanism behind GraphMat's tall bar in the
  // right panel of Fig 4.
  const auto el = test::pagerank_graph();
  GraphMatSystem sys;
  sys.set_edges(el);
  sys.build();
  const auto out = CSRGraph::from_edges(el);
  const auto in = CSRGraph::from_edges(el, true);
  PageRankParams params;
  const auto truth = ref::pagerank(out, in, params);
  const auto pr = sys.pagerank(params);
  EXPECT_GE(pr.iterations, truth.iterations);
}

TEST(GraphMatSystem, PageRankTerminatesAtFloatFixpoint) {
  GraphMatSystem sys;
  sys.set_edges(test::cycle_graph(16));
  sys.build();
  PageRankParams params;
  params.max_iterations = 1000;
  const auto pr = sys.pagerank(params);
  EXPECT_LT(pr.iterations, 1000) << "must reach an exact float fixpoint";
}

TEST(GraphMatSystem, SsspViaSemiringMinPlus) {
  EdgeList el;
  el.num_vertices = 4;
  el.weighted = true;
  el.edges = {Edge{0, 1, 4.0f}, Edge{0, 2, 1.0f}, Edge{2, 1, 1.0f},
              Edge{1, 3, 1.0f}};
  GraphMatSystem sys;
  sys.set_edges(el);
  sys.build();
  const auto r = sys.sssp(0);
  EXPECT_FLOAT_EQ(r.dist[1], 2.0f);
  EXPECT_FLOAT_EQ(r.dist[3], 3.0f);
}

TEST(GraphMatSystem, FullMatrixScanCostModel) {
  // The engine walks the whole compressed structure per iteration: BFS on
  // a length-L path must report edge work ~ L * nnz, not ~ nnz.
  const vid_t n = 32;
  GraphMatSystem sys;
  sys.set_edges(test::line_graph(n));
  sys.build();
  (void)sys.bfs(0);
  const auto alg = sys.log().find(phase::kAlgorithm);
  ASSERT_TRUE(alg.has_value());
  const auto nnz = 2u * (n - 1);
  EXPECT_GT(alg->work.edges_processed, static_cast<std::uint64_t>(nnz) * (n / 2))
      << "GraphMat's dense-scan overhead should be visible in the counters";
}

}  // namespace
}  // namespace epgs::systems
