// Graph500-specific behaviour: the two-kernel structure and BFS-only
// capability surface.
#include "systems/graph500/graph500_system.hpp"

#include <gtest/gtest.h>

#include "gen/kronecker.hpp"
#include "graph/transforms.hpp"
#include "systems/common/validation.hpp"
#include "test_util.hpp"

namespace epgs::systems {
namespace {

TEST(Graph500, CapabilitiesAreBfsOnly) {
  Graph500System sys;
  const auto caps = sys.capabilities();
  EXPECT_TRUE(caps.bfs);
  EXPECT_FALSE(caps.sssp);
  EXPECT_FALSE(caps.pagerank);
  EXPECT_FALSE(caps.cdlp);
  EXPECT_FALSE(caps.lcc);
  EXPECT_FALSE(caps.wcc);
  EXPECT_FALSE(caps.tc);
  EXPECT_FALSE(caps.bc);
  EXPECT_TRUE(caps.separate_construction);
}

TEST(Graph500, Kernel1BuildsCsr) {
  Graph500System sys;
  sys.set_edges(test::line_graph(5));
  sys.build();
  EXPECT_EQ(sys.csr().num_vertices(), 5u);
  EXPECT_EQ(sys.csr().num_edges(), 8u);
}

TEST(Graph500, Kernel2PassesSpecValidation) {
  gen::KroneckerParams p;
  p.scale = 9;
  p.edgefactor = 16;
  const auto el = dedupe(symmetrize(gen::kronecker(p)));
  Graph500System sys;
  sys.set_edges(el);
  sys.build();
  const auto csr = CSRGraph::from_edges(el);
  for (const vid_t root : {vid_t{1}, vid_t{17}, vid_t{333}}) {
    const auto r = sys.bfs(root);
    const auto err = validate_bfs(csr, r);
    EXPECT_FALSE(err.has_value()) << "root " << root << ": "
                                  << err.value_or("");
  }
}

TEST(Graph500, SelfLoopsAndDuplicatesTolerated) {
  // The spec requires the BFS to cope with the raw generator output,
  // which contains self loops and duplicate edges.
  gen::KroneckerParams p;
  p.scale = 7;
  const auto el = symmetrize(gen::kronecker(p));  // NOT deduplicated
  Graph500System sys;
  sys.set_edges(el);
  sys.build();
  const auto csr = CSRGraph::from_edges(el);
  const auto r = sys.bfs(3);
  EXPECT_FALSE(validate_bfs(csr, r).has_value());
}

TEST(Graph500, WorkCountersTrackScannedEdges) {
  Graph500System sys;
  const auto el = test::complete_graph(16);
  sys.set_edges(el);
  sys.build();
  (void)sys.bfs(0);
  const auto alg = sys.log().find(phase::kAlgorithm);
  ASSERT_TRUE(alg.has_value());
  // Top-down BFS on K16 from any root scans every edge of the frontier
  // levels: at least n-1 and at most m edges.
  EXPECT_GE(alg->work.edges_processed, 15u);
  EXPECT_LE(alg->work.edges_processed, el.num_edges());
}

TEST(Graph500, RepeatedRootsIndependent) {
  Graph500System sys;
  sys.set_edges(test::cycle_graph(12));
  sys.build();
  const auto a = sys.bfs(0);
  const auto b = sys.bfs(6);
  const auto c = sys.bfs(0);
  // Parent choice may vary with thread interleaving; level sets may not.
  EXPECT_EQ(a.levels(), c.levels());
  EXPECT_NE(a.levels(), b.levels());
}

}  // namespace
}  // namespace epgs::systems
