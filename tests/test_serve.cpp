// End-to-end tests for the warm-graph query service: an in-process
// Server on a temp-dir socket, driven by real protocol clients. The
// correctness bar for served results is byte-identity with a direct
// run_experiment of the same spec (after stripping the volatile timing/
// provenance columns — the same currency the chaos harness uses).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/commands.hpp"
#include "harness/records.hpp"
#include "harness/runner.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "systems/common/fault_injection.hpp"

namespace epgs {
namespace {

namespace fs = std::filesystem;

/// Unique temp dir per fixture, removed on teardown (test_cli.cpp idiom).
class TempDir {
 public:
  TempDir() {
    static std::atomic<int> counter{0};
    dir_ = fs::temp_directory_path() /
           ("epgs_serve_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1)));
    fs::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] fs::path path() const { return dir_; }

 private:
  fs::path dir_;
};

serve::Request make_run_request(int scale, std::uint64_t seed,
                                const std::string& system,
                                harness::Algorithm alg, int roots = 1,
                                std::int64_t deadline_ms = 0) {
  serve::Request req;
  req.verb = serve::Verb::kRun;
  req.graph.kind = harness::GraphSpec::Kind::kKronecker;
  req.graph.scale = scale;
  req.graph.seed = seed;
  if (alg == harness::Algorithm::kSssp) req.graph.add_weights = true;
  req.system = system;
  req.algorithm = alg;
  req.roots = roots;
  req.threads = 1;
  req.deadline_ms = deadline_ms;
  return req;
}

/// The direct (no server) execution of the same request, as stripped CSV.
std::string direct_stripped_csv(const serve::Request& req) {
  harness::ExperimentConfig cfg;
  cfg.graph = req.graph;
  cfg.systems = {req.system};
  cfg.algorithms = {req.algorithm};
  cfg.num_roots = req.roots;
  cfg.threads = req.threads;
  const auto result = harness::run_experiment(cfg);
  return harness::records_to_stripped_csv(result.records);
}

/// Stripped CSV of an ok reply; empty (with the error noted by the
/// caller) otherwise. No gtest assertions here — this runs on client
/// threads.
std::string served_stripped_csv(const serve::Reply& reply) {
  if (reply.kind != serve::ReplyKind::kOk) return {};
  return harness::records_to_stripped_csv(
      harness::records_from_csv(reply.body));
}

/// Poll the stats endpoint until `pred(stats_body)` holds or ~5s elapse.
bool wait_for_stats(const std::string& socket,
                    const std::function<bool(const std::string&)>& pred) {
  for (int i = 0; i < 500; ++i) {
    const auto reply = serve::query_server(socket, "stats");
    if (reply.kind == serve::ReplyKind::kOk && pred(reply.body)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

std::uint64_t stat_value(const std::string& stats, const std::string& key) {
  std::istringstream in(stats);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(key + " ", 0) == 0) {
      return std::stoull(line.substr(key.size() + 1));
    }
  }
  return ~0ull;
}

TEST(ServeEndToEnd, RepliesByteIdenticalToDirectRun) {
  TempDir tmp;
  serve::ServerOptions opts;
  opts.socket_path = (tmp.path() / "epg.sock").string();
  serve::Server server(opts);

  const auto bfs = make_run_request(7, 11, "GAP", harness::Algorithm::kBfs,
                                    /*roots=*/2);
  const auto pr =
      make_run_request(7, 11, "Ligra", harness::Algorithm::kPageRank);

  const std::string want_bfs = direct_stripped_csv(bfs);
  const std::string want_pr = direct_stripped_csv(pr);
  ASSERT_NE(want_bfs, want_pr);

  // N concurrent clients, mixed queries: every reply must match its
  // direct-run control regardless of interleaving or coalescing.
  constexpr int kClients = 6;
  std::vector<serve::Reply> replies(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      const auto& req = (i % 2 == 0) ? bfs : pr;
      replies[i] = serve::query_server(opts.socket_path,
                                       serve::render_request(req));
    });
  }
  for (auto& t : clients) t.join();
  for (int i = 0; i < kClients; ++i) {
    ASSERT_EQ(replies[i].kind, serve::ReplyKind::kOk)
        << "client " << i << ": " << replies[i].body;
    EXPECT_EQ(served_stripped_csv(replies[i]),
              (i % 2 == 0) ? want_bfs : want_pr)
        << "client " << i;
  }

  // Replays hit the warm graph — same bytes, no new cold load.
  const auto warm = serve::query_server(opts.socket_path,
                                        serve::render_request(bfs));
  ASSERT_EQ(warm.kind, serve::ReplyKind::kOk) << warm.body;
  EXPECT_EQ(served_stripped_csv(warm), want_bfs);
  const auto stats = serve::query_server(opts.socket_path, "stats");
  ASSERT_EQ(stats.kind, serve::ReplyKind::kOk);
  EXPECT_EQ(stat_value(stats.body, "cold_loads"), 1u);  // one fingerprint
  EXPECT_GE(stat_value(stats.body, "warm_hits"), 1u);
  EXPECT_EQ(stat_value(stats.body, "errors"), 0u);
  EXPECT_EQ(stat_value(stats.body, "rejected_overload"), 0u);
}

TEST(ServeEndToEnd, StatsExposeLatencyQuantiles) {
  TempDir tmp;
  serve::ServerOptions opts;
  opts.socket_path = (tmp.path() / "epg.sock").string();
  serve::Server server(opts);

  const auto req = make_run_request(6, 5, "GAP", harness::Algorithm::kBfs);
  for (int i = 0; i < 3; ++i) {
    const auto reply = serve::query_server(opts.socket_path,
                                           serve::render_request(req));
    ASSERT_EQ(reply.kind, serve::ReplyKind::kOk) << reply.body;
  }
  const auto stats = serve::query_server(opts.socket_path, "stats");
  ASSERT_EQ(stats.kind, serve::ReplyKind::kOk);
  EXPECT_EQ(stat_value(stats.body, "latency_count"), 3u);
  EXPECT_NE(stats.body.find("latency_p50_ms "), std::string::npos);
  EXPECT_NE(stats.body.find("latency_p95_ms "), std::string::npos);
  EXPECT_NE(stats.body.find("latency_p99_ms "), std::string::npos);
  const auto snap = server.snapshot();
  EXPECT_GE(snap.p99_seconds, snap.p50_seconds);
  EXPECT_GT(snap.max_seconds, 0.0);
}

TEST(ServeAdmission, QueueFullIsTypedRejection) {
  TempDir tmp;
  serve::ServerOptions opts;
  opts.socket_path = (tmp.path() / "epg.sock").string();
  opts.queue_depth = 1;
  serve::Server server(opts);

  // Wedge the worker: the first GAP kernel phase hangs until the
  // deadline-fed watchdog cancels it (~3s). Everything below happens
  // while that batch occupies the worker.
  fault::Scoped hang(fault::Plan{.system = "GAP",
                                 .kind = fault::Kind::kHang,
                                 .phase = "bfs"});
  const auto wedge = make_run_request(6, 21, "GAP", harness::Algorithm::kBfs,
                                      /*roots=*/1, /*deadline_ms=*/3000);
  serve::Reply wedge_reply;
  std::thread wedge_client([&] {
    wedge_reply = serve::query_server(opts.socket_path,
                                      serve::render_request(wedge));
  });
  // Wait until the wedge batch is actually *executing* (not queued):
  // add_batch fires at dequeue, so batches >= 1 means the queue is empty
  // again and its one slot is free.
  ASSERT_TRUE(wait_for_stats(opts.socket_path, [](const std::string& s) {
    return stat_value(s, "batches") >= 1;
  }));

  // Fill the single queue slot...
  const auto queued = make_run_request(6, 22, "GAP",
                                       harness::Algorithm::kPageRank);
  std::vector<serve::Reply> queued_replies(2);
  std::thread queued_client([&] {
    queued_replies[0] = serve::query_server(opts.socket_path,
                                            serve::render_request(queued));
  });
  // ...prove the slot is taken by watching an identical request coalesce
  // onto it (coalescing only targets batches sitting in the queue)...
  std::thread coalesced_client([&] {
    queued_replies[1] = serve::query_server(opts.socket_path,
                                            serve::render_request(queued));
  });
  ASSERT_TRUE(wait_for_stats(opts.socket_path, [](const std::string& s) {
    return stat_value(s, "coalesced") >= 1;
  }));

  // ...then a request for a *different* batch must be shed with a typed
  // overload reply, immediately (no queueing, no silent drop).
  const auto rejected = make_run_request(6, 23, "Ligra",
                                         harness::Algorithm::kBfs);
  const auto overload = serve::query_server(opts.socket_path,
                                            serve::render_request(rejected));
  EXPECT_EQ(overload.kind, serve::ReplyKind::kOverloaded) << overload.body;
  EXPECT_NE(overload.body.find("queue full"), std::string::npos);

  wedge_client.join();
  queued_client.join();
  coalesced_client.join();
  // The wedged run blew its deadline: typed deadline reply, not a hang.
  EXPECT_EQ(wedge_reply.kind, serve::ReplyKind::kDeadline)
      << wedge_reply.body;
  // The queued + coalesced clients were served normally afterwards.
  EXPECT_EQ(queued_replies[0].kind, serve::ReplyKind::kOk)
      << queued_replies[0].body;
  EXPECT_EQ(queued_replies[1].kind, serve::ReplyKind::kOk)
      << queued_replies[1].body;

  const auto stats = serve::query_server(opts.socket_path, "stats");
  ASSERT_EQ(stats.kind, serve::ReplyKind::kOk);
  EXPECT_GE(stat_value(stats.body, "rejected_overload"), 1u);
  EXPECT_GE(stat_value(stats.body, "rejected_deadline"), 1u);
  // The server survived all of it and still answers.
  EXPECT_EQ(serve::query_server(opts.socket_path, "ping").kind,
            serve::ReplyKind::kOk);
}

TEST(ServeAdmission, ExpiredDeadlineInQueueGetsTypedReplyWithoutExecution) {
  TempDir tmp;
  serve::ServerOptions opts;
  opts.socket_path = (tmp.path() / "epg.sock").string();
  serve::Server server(opts);

  fault::Scoped hang(fault::Plan{.system = "GAP",
                                 .kind = fault::Kind::kHang,
                                 .phase = "bfs"});
  const auto wedge = make_run_request(6, 31, "GAP", harness::Algorithm::kBfs,
                                      /*roots=*/1, /*deadline_ms=*/1000);
  serve::Reply wedge_reply;
  std::thread wedge_client([&] {
    wedge_reply = serve::query_server(opts.socket_path,
                                      serve::render_request(wedge));
  });
  ASSERT_TRUE(wait_for_stats(opts.socket_path, [](const std::string& s) {
    return stat_value(s, "batches") >= 1;
  }));

  // 50ms budget against ~1s of queue wait: must come back as a typed
  // deadline reply once dequeued — never executed, never a hang.
  const auto hopeless = make_run_request(6, 32, "Ligra",
                                         harness::Algorithm::kPageRank,
                                         /*roots=*/1, /*deadline_ms=*/50);
  const auto reply = serve::query_server(opts.socket_path,
                                         serve::render_request(hopeless));
  EXPECT_EQ(reply.kind, serve::ReplyKind::kDeadline) << reply.body;
  wedge_client.join();
  EXPECT_EQ(wedge_reply.kind, serve::ReplyKind::kDeadline)
      << wedge_reply.body;

  const auto stats = serve::query_server(opts.socket_path, "stats");
  ASSERT_EQ(stats.kind, serve::ReplyKind::kOk);
  EXPECT_GE(stat_value(stats.body, "rejected_deadline"), 2u);
  // The hopeless batch was answered from the queue: only the wedge's
  // graph (and nothing for the Ligra spec) was ever loaded.
  EXPECT_EQ(stat_value(stats.body, "cold_loads"), 1u);
}

TEST(ServeResidency, SecondGraphEvictsLruUnderTightBudget) {
  TempDir tmp;
  const std::uint64_t one_graph = [] {
    harness::GraphSpec spec;
    spec.kind = harness::GraphSpec::Kind::kKronecker;
    spec.scale = 7;
    spec.seed = 41;
    return serve::edge_list_bytes(harness::materialize(spec));
  }();

  // Budget fits one resident graph but not two.
  serve::ServerOptions tight;
  tight.socket_path = (tmp.path() / "tight.sock").string();
  tight.max_resident_bytes = one_graph + one_graph / 2;
  serve::Server tight_server(tight);

  const auto first = make_run_request(7, 41, "GAP", harness::Algorithm::kBfs);
  const auto second = make_run_request(7, 42, "GAP", harness::Algorithm::kBfs);
  ASSERT_EQ(serve::query_server(tight.socket_path,
                                serve::render_request(first))
                .kind,
            serve::ReplyKind::kOk);
  ASSERT_EQ(serve::query_server(tight.socket_path,
                                serve::render_request(second))
                .kind,
            serve::ReplyKind::kOk);

  auto stats = serve::query_server(tight.socket_path, "stats");
  ASSERT_EQ(stats.kind, serve::ReplyKind::kOk);
  EXPECT_EQ(stat_value(stats.body, "evictions"), 1u);
  EXPECT_EQ(stat_value(stats.body, "cold_loads"), 2u);
  EXPECT_LE(stat_value(stats.body, "resident_graph_bytes"),
            tight.max_resident_bytes);
  // The LRU victim was the *first* graph; only the second remains.
  const auto snap = tight_server.snapshot();
  ASSERT_EQ(snap.graphs.size(), 1u);
  EXPECT_EQ(snap.graphs[0].name, second.graph.name());
  // Re-querying the evicted graph is correct (cold) service, not an error.
  ASSERT_EQ(serve::query_server(tight.socket_path,
                                serve::render_request(first))
                .kind,
            serve::ReplyKind::kOk);
  stats = serve::query_server(tight.socket_path, "stats");
  EXPECT_EQ(stat_value(stats.body, "cold_loads"), 3u);
  EXPECT_EQ(stat_value(stats.body, "evictions"), 2u);
}

TEST(ServeCoalescing, IdenticalQueuedRequestsShareOneExecution) {
  TempDir tmp;
  serve::ServerOptions opts;
  opts.socket_path = (tmp.path() / "epg.sock").string();
  serve::Server server(opts);

  fault::Scoped hang(fault::Plan{.system = "GAP",
                                 .kind = fault::Kind::kHang,
                                 .phase = "bfs"});
  const auto wedge = make_run_request(6, 51, "GAP", harness::Algorithm::kBfs,
                                      /*roots=*/1, /*deadline_ms=*/2000);
  std::thread wedge_client([&] {
    (void)serve::query_server(opts.socket_path, serve::render_request(wedge));
  });
  ASSERT_TRUE(wait_for_stats(opts.socket_path, [](const std::string& s) {
    return stat_value(s, "batches") >= 1;
  }));

  // Three identical requests pile up behind the wedge; they must fuse
  // into ONE batch and all receive the same (correct) CSV.
  const auto shared = make_run_request(6, 52, "Ligra",
                                       harness::Algorithm::kPageRank);
  const std::string want = direct_stripped_csv(shared);
  std::vector<serve::Reply> replies(3);
  std::vector<std::thread> clients;
  for (int i = 0; i < 3; ++i) {
    clients.emplace_back([&, i] {
      replies[i] = serve::query_server(opts.socket_path,
                                       serve::render_request(shared));
    });
  }
  for (auto& t : clients) t.join();
  wedge_client.join();
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(replies[i].kind, serve::ReplyKind::kOk)
        << "client " << i << ": " << replies[i].body;
    EXPECT_EQ(served_stripped_csv(replies[i]), want) << "client " << i;
  }

  const auto stats = serve::query_server(opts.socket_path, "stats");
  ASSERT_EQ(stats.kind, serve::ReplyKind::kOk);
  // At least two of the three rode along; exactly one batch ran the
  // shared spec (2 batches total: the wedge and the shared one).
  EXPECT_GE(stat_value(stats.body, "coalesced"), 2u);
  EXPECT_EQ(stat_value(stats.body, "batches"), 2u);
  EXPECT_EQ(stat_value(stats.body, "cold_loads"), 2u);
}

TEST(ServeCli, ServeCommandServesAndDumpsMetricsOnClientShutdown) {
  TempDir tmp;
  const std::string socket = (tmp.path() / "epg.sock").string();

  std::ostringstream serve_out;
  int serve_rc = -1;
  std::thread daemon([&] {
    std::ostringstream err;
    serve_rc = cli::dispatch({"serve", "--socket", socket}, serve_out, err);
  });
  for (int i = 0; i < 200 && !fs::exists(socket); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(fs::exists(socket));

  // Drive it with the query subcommand (the full client path).
  std::ostringstream q1, q2, q3;
  std::ostringstream err;
  EXPECT_EQ(cli::dispatch({"query", "ping", "--socket", socket}, q1, err), 0);
  EXPECT_EQ(q1.str(), "pong\n");
  EXPECT_EQ(cli::dispatch({"query", "run", "--socket", socket, "--kind",
                           "kron", "--scale", "6", "--system", "GAP",
                           "--algorithm", "BFS", "--threads", "1"},
                          q2, err),
            0);
  EXPECT_NE(q2.str().find("run algorithm"), std::string::npos);
  EXPECT_EQ(
      cli::dispatch({"query", "shutdown", "--socket", socket}, q3, err), 0);

  daemon.join();
  EXPECT_EQ(serve_rc, 0);
  const std::string out = serve_out.str();
  EXPECT_NE(out.find("serving on " + socket), std::string::npos);
  EXPECT_NE(out.find("metrics:"), std::string::npos);
  EXPECT_NE(out.find("served 1"), std::string::npos);
  EXPECT_NE(out.find("latency_p99_ms "), std::string::npos);
  EXPECT_NE(out.find("shutdown requested by client"), std::string::npos);
  EXPECT_FALSE(fs::exists(socket)) << "socket file must be unlinked";
}

TEST(ServeCli, QueryAgainstNoServerFailsCleanly) {
  TempDir tmp;
  std::ostringstream out, err;
  const int rc = cli::dispatch(
      {"query", "ping", "--socket", (tmp.path() / "nope.sock").string()},
      out, err);
  EXPECT_EQ(rc, 1);
  EXPECT_NE(err.str().find("query"), std::string::npos);
}

}  // namespace
}  // namespace epgs
