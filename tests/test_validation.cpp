#include "systems/common/validation.hpp"

#include <gtest/gtest.h>

#include "systems/common/reference.hpp"
#include "test_util.hpp"

namespace epgs {
namespace {

BfsResult good_bfs(const CSRGraph& g, vid_t root) {
  // Build a valid parent tree from reference levels.
  const auto levels = ref::bfs_levels(g, root);
  BfsResult r;
  r.root = root;
  r.parent.assign(g.num_vertices(), kNoVertex);
  r.parent[root] = root;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (v == root || levels[v] == kNoVertex) continue;
    for (const vid_t u : g.neighbors(v)) {
      if (levels[u] + 1 == levels[v]) {
        r.parent[v] = u;
        break;
      }
    }
  }
  return r;
}

TEST(ValidateBfs, AcceptsValidTree) {
  const auto g = CSRGraph::from_edges(test::two_triangles());
  EXPECT_FALSE(validate_bfs(g, good_bfs(g, 0)).has_value());
}

TEST(ValidateBfs, RejectsWrongRootParent) {
  const auto g = CSRGraph::from_edges(test::line_graph(4));
  auto r = good_bfs(g, 0);
  r.parent[0] = 1;
  const auto err = validate_bfs(g, r);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("rule 1"), std::string::npos);
}

TEST(ValidateBfs, RejectsNonEdgeParent) {
  const auto g = CSRGraph::from_edges(test::line_graph(4));
  auto r = good_bfs(g, 0);
  r.parent[3] = 0;  // (0,3) is not an edge
  const auto err = validate_bfs(g, r);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("rule"), std::string::npos);
}

TEST(ValidateBfs, RejectsMissedReachableVertex) {
  const auto g = CSRGraph::from_edges(test::line_graph(4));
  auto r = good_bfs(g, 0);
  r.parent[3] = kNoVertex;
  const auto err = validate_bfs(g, r);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("rule 4"), std::string::npos);
}

TEST(ValidateBfs, RejectsPhantomReachability) {
  const auto g = CSRGraph::from_edges(test::two_triangles());
  auto r = good_bfs(g, 0);
  r.parent[4] = 3;  // component of 3 is not reachable from 0
  const auto err = validate_bfs(g, r);
  ASSERT_TRUE(err.has_value());
}

TEST(ValidateBfs, RejectsNonShortestTree) {
  const auto g = CSRGraph::from_edges(test::cycle_graph(6));
  auto r = good_bfs(g, 0);
  // Detour: hang vertex 1 off the far side (1's other neighbor is 2).
  r.parent[1] = 2;
  const auto err = validate_bfs(g, r);
  ASSERT_TRUE(err.has_value());
}

TEST(ValidateBfs, RejectsCyclicParentArray) {
  const auto g = CSRGraph::from_edges(test::cycle_graph(4));
  BfsResult r;
  r.root = 0;
  r.parent = {0, 2, 1, 0};  // 1 <-> 2 cycle
  const auto err = validate_bfs(g, r);
  ASSERT_TRUE(err.has_value());
}

TEST(ValidateBfs, RejectsSizeMismatch) {
  const auto g = CSRGraph::from_edges(test::line_graph(4));
  BfsResult r;
  r.root = 0;
  r.parent = {0, 0};
  EXPECT_TRUE(validate_bfs(g, r).has_value());
}

TEST(ValidateSssp, AcceptsDijkstra) {
  const auto g =
      CSRGraph::from_edges(test::line_graph(6, /*weighted=*/true));
  SsspResult r;
  r.root = 0;
  r.dist = ref::dijkstra(g, 0);
  EXPECT_FALSE(validate_sssp(g, r).has_value());
}

TEST(ValidateSssp, RejectsUnrelaxedEdge) {
  const auto g =
      CSRGraph::from_edges(test::line_graph(4, /*weighted=*/true));
  SsspResult r;
  r.root = 0;
  r.dist = ref::dijkstra(g, 0);
  r.dist[2] += 5.0f;
  const auto err = validate_sssp(g, r);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("relaxed"), std::string::npos);
}

TEST(ValidateSssp, RejectsTooSmallDistance) {
  const auto g =
      CSRGraph::from_edges(test::line_graph(4, /*weighted=*/true));
  SsspResult r;
  r.root = 0;
  r.dist = ref::dijkstra(g, 0);
  r.dist[3] = 0.5f;  // all edges still relaxed, but not the true distance
  EXPECT_TRUE(validate_sssp(g, r).has_value());
}

TEST(ValidateSssp, RejectsNonZeroRoot) {
  const auto g = CSRGraph::from_edges(test::line_graph(3));
  SsspResult r;
  r.root = 0;
  r.dist = {1.0f, 1.0f, 2.0f};
  EXPECT_TRUE(validate_sssp(g, r).has_value());
}

TEST(ValidatePagerank, AcceptsNormalizedPositive) {
  PageRankResult r;
  r.rank = {0.25, 0.25, 0.5};
  EXPECT_FALSE(validate_pagerank(r).has_value());
}

TEST(ValidatePagerank, RejectsBadSumOrSign) {
  PageRankResult r;
  r.rank = {0.9, 0.9};
  EXPECT_TRUE(validate_pagerank(r).has_value());
  r.rank = {1.5, -0.5};
  EXPECT_TRUE(validate_pagerank(r).has_value());
}

TEST(ValidateWcc, AcceptsReference) {
  const auto el = test::two_triangles();
  EXPECT_FALSE(validate_wcc(el, ref::wcc(el)).has_value());
}

TEST(ValidateWcc, RejectsSplitEdge) {
  const auto el = test::line_graph(4);
  auto r = ref::wcc(el);
  r.component[3] = 3;
  EXPECT_TRUE(validate_wcc(el, r).has_value());
}

TEST(ValidateWcc, RejectsNonMinRepresentative) {
  const auto el = test::two_triangles();
  auto r = ref::wcc(el);
  for (vid_t v = 3; v <= 5; ++v) r.component[v] = 4;  // 4 is not the min
  EXPECT_TRUE(validate_wcc(el, r).has_value());
}

}  // namespace
}  // namespace epgs
