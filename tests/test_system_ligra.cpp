// Ligra primitives and system behaviour (the framework-extension system).
#include "systems/ligra/ligra_system.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "systems/common/reference.hpp"
#include "systems/common/validation.hpp"
#include "systems/ligra/ligra_primitives.hpp"
#include "test_util.hpp"

namespace epgs::systems {
namespace {

using ligra_detail::edge_map;
using ligra_detail::vertex_map;
using ligra_detail::VertexSubset;

TEST(VertexSubsetT, Constructors) {
  const auto single = VertexSubset::single(10, 3);
  EXPECT_EQ(single.size(), 1u);
  EXPECT_EQ(single.vertices()[0], 3u);

  const auto all = VertexSubset::all(4);
  EXPECT_EQ(all.size(), 4u);
  EXPECT_TRUE(VertexSubset(5).empty());
}

TEST(VertexSubsetT, DenseViewAndDegree) {
  const auto g = CSRGraph::from_edges(test::star_graph(6));
  const auto s = VertexSubset::from_sparse(6, {0, 2});
  const auto bm = s.to_dense();
  EXPECT_TRUE(bm.test(0));
  EXPECT_TRUE(bm.test(2));
  EXPECT_FALSE(bm.test(1));
  EXPECT_EQ(s.out_degree(g), 6u);  // hub 5 + leaf 1
}

TEST(VertexMap, FiltersByPredicate) {
  const auto s = VertexSubset::all(6);
  const auto evens =
      vertex_map(s, [](vid_t v) { return v % 2 == 0; });
  EXPECT_EQ(evens.vertices(), (std::vector<vid_t>{0, 2, 4}));
}

struct CollectF {
  std::vector<std::uint8_t>* hit;
  bool cond(vid_t) const { return true; }
  bool update(vid_t, vid_t d, weight_t) const {
    (*hit)[d] = 1;
    return true;
  }
  bool update_atomic(vid_t s, vid_t d, weight_t w) const {
    return update(s, d, w);
  }
};

TEST(EdgeMap, SparseModeVisitsOutNeighbors) {
  const auto el = test::star_graph(64);  // sparse frontier from a leaf
  const auto out = CSRGraph::from_edges(el);
  const auto in = CSRGraph::from_edges(el, true);
  std::vector<std::uint8_t> hit(64, 0);
  std::uint64_t examined = 0;
  const auto next = edge_map(out, in, VertexSubset::single(64, 5),
                             CollectF{&hit}, examined);
  EXPECT_EQ(next.size(), 1u);
  EXPECT_EQ(next.vertices()[0], 0u);  // leaf 5 -> hub 0
  EXPECT_EQ(examined, 1u);
}

TEST(EdgeMap, DenseModeMatchesSparseResults) {
  // Force both regimes on the same frontier by exploiting the threshold:
  // a hub frontier in a star is dense (degree ~ m), a leaf is sparse.
  const auto el = test::star_graph(32);
  const auto out = CSRGraph::from_edges(el);
  const auto in = CSRGraph::from_edges(el, true);
  std::vector<std::uint8_t> hit(32, 0);
  std::uint64_t examined = 0;
  auto next = edge_map(out, in, VertexSubset::single(32, 0),
                       CollectF{&hit}, examined);
  auto vs = next.vertices();
  std::sort(vs.begin(), vs.end());
  std::vector<vid_t> expect(31);
  for (vid_t v = 1; v < 32; ++v) expect[v - 1] = v;
  EXPECT_EQ(vs, expect) << "dense pull must reach every leaf";
}

TEST(EdgeMap, CondPrunesDestinations) {
  struct OnlyOddF {
    bool cond(vid_t d) const { return d % 2 == 1; }
    bool update(vid_t, vid_t, weight_t) const { return true; }
    bool update_atomic(vid_t, vid_t, weight_t) const { return true; }
  };
  const auto el = test::star_graph(8);
  const auto out = CSRGraph::from_edges(el);
  const auto in = CSRGraph::from_edges(el, true);
  std::uint64_t examined = 0;
  auto next = edge_map(out, in, VertexSubset::single(8, 0), OnlyOddF{},
                       examined);
  auto vs = next.vertices();
  std::sort(vs.begin(), vs.end());
  EXPECT_EQ(vs, (std::vector<vid_t>{1, 3, 5, 7}));
}

TEST(LigraSystem, CapabilitiesAndFormat) {
  LigraSystem sys;
  const auto caps = sys.capabilities();
  EXPECT_TRUE(caps.bfs && caps.sssp && caps.pagerank && caps.wcc &&
              caps.bc);
  EXPECT_FALSE(caps.cdlp || caps.lcc || caps.tc);
  EXPECT_TRUE(caps.separate_construction);
  EXPECT_EQ(sys.native_format(), GraphFormat::kLigraAdj);
}

TEST(LigraSystem, BfsSwitchesRegimesAndValidates) {
  // Star from the hub: frontier jumps from 1 vertex to n-1 (dense), then
  // back to empty — exercising both edgeMap modes in one run.
  const auto el = test::star_graph(128);
  LigraSystem sys;
  sys.set_edges(el);
  sys.build();
  const auto csr = CSRGraph::from_edges(el);
  for (const vid_t root : {vid_t{0}, vid_t{7}}) {
    const auto err = validate_bfs(csr, sys.bfs(root));
    EXPECT_FALSE(err.has_value()) << err.value_or("");
  }
}

TEST(LigraSystem, BcMatchesBrandesOnDiamond) {
  EdgeList el;
  el.num_vertices = 4;
  el.edges = {Edge{0, 1, 1.0f}, Edge{0, 2, 1.0f}, Edge{1, 3, 1.0f},
              Edge{2, 3, 1.0f}};
  LigraSystem sys;
  sys.set_edges(el);
  sys.build();
  const auto r = sys.bc(0);
  EXPECT_DOUBLE_EQ(r.dependency[1], 0.5);
  EXPECT_DOUBLE_EQ(r.dependency[2], 0.5);
  EXPECT_DOUBLE_EQ(r.dependency[0], 3.0);
}

}  // namespace
}  // namespace epgs::systems
