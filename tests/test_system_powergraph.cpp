// PowerGraph-specific behaviour: vertex-cut invariants, replication
// factor, and GAS engine counters.
#include "systems/powergraph/powergraph_system.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/datasets.hpp"
#include "gen/kronecker.hpp"
#include "graph/csr.hpp"
#include "graph/transforms.hpp"
#include "systems/common/reference.hpp"
#include "harness/experiment.hpp"
#include "systems/powergraph/vertex_cut.hpp"
#include "test_util.hpp"

namespace epgs::systems {
namespace {

using powergraph_detail::VertexCut;

EdgeList kron_graph() {
  gen::KroneckerParams p;
  p.scale = 8;
  p.edgefactor = 8;
  return dedupe(symmetrize(gen::kronecker(p)));
}

TEST(VertexCut, EdgesArePartitionedExactly) {
  const auto el = kron_graph();
  const auto vc = VertexCut::build(el, 4);
  eid_t total = 0;
  for (int p = 0; p < vc.num_partitions(); ++p) {
    total += vc.edges_of(p).size();
  }
  EXPECT_EQ(total, el.num_edges()) << "every edge on exactly one partition";
}

TEST(VertexCut, ReplicasCoverEndpoints) {
  const auto el = kron_graph();
  const auto vc = VertexCut::build(el, 4);
  for (int p = 0; p < vc.num_partitions(); ++p) {
    for (const auto& e : vc.edges_of(p)) {
      const auto& ru = vc.replicas_of(e.src);
      const auto& rv = vc.replicas_of(e.dst);
      EXPECT_NE(std::find(ru.begin(), ru.end(), p), ru.end());
      EXPECT_NE(std::find(rv.begin(), rv.end(), p), rv.end());
    }
  }
}

TEST(VertexCut, ReplicasAreUniqueAndBounded) {
  const auto el = kron_graph();
  const int np = 6;
  const auto vc = VertexCut::build(el, np);
  const auto deg = total_degrees(el);
  for (vid_t v = 0; v < el.num_vertices; ++v) {
    auto r = vc.replicas_of(v);
    std::sort(r.begin(), r.end());
    EXPECT_EQ(std::unique(r.begin(), r.end()), r.end());
    EXPECT_LE(r.size(), static_cast<std::size_t>(np));
    EXPECT_LE(r.size(), std::max<std::size_t>(deg[v], 1));
    if (deg[v] > 0) EXPECT_GE(r.size(), 1u);
  }
}

TEST(VertexCut, MasterIsAReplica) {
  const auto el = kron_graph();
  const auto vc = VertexCut::build(el, 5);
  for (vid_t v = 0; v < el.num_vertices; ++v) {
    const auto& r = vc.replicas_of(v);
    if (r.empty()) continue;
    EXPECT_NE(std::find(r.begin(), r.end(), vc.master_of(v)), r.end());
  }
}

TEST(VertexCut, ReplicationFactorWithinBounds) {
  const auto el = kron_graph();
  for (const int np : {1, 2, 4, 8}) {
    const auto vc = VertexCut::build(el, np);
    const double rf = vc.replication_factor();
    EXPECT_GE(rf, 1.0) << np;
    EXPECT_LE(rf, static_cast<double>(np)) << np;
  }
}

TEST(VertexCut, SinglePartitionHasNoReplication) {
  const auto vc = VertexCut::build(test::two_triangles(), 1);
  EXPECT_DOUBLE_EQ(vc.replication_factor(), 1.0);
}

TEST(VertexCut, GreedyBeatsWorstCaseOnHubs) {
  // On a star, the greedy heuristic keeps leaf vertices on a single
  // partition each; only the hub should be replicated widely.
  const auto vc = VertexCut::build(test::star_graph(200), 8);
  std::size_t leaf_replicas = 0;
  for (vid_t v = 1; v < 200; ++v) {
    leaf_replicas += vc.replicas_of(v).size();
  }
  EXPECT_EQ(leaf_replicas, 199u) << "each leaf on exactly one partition";
}

TEST(VertexCut, LoadIsReasonablyBalanced) {
  const auto el = kron_graph();
  const int np = 4;
  const auto vc = VertexCut::build(el, np);
  std::vector<std::size_t> loads;
  for (int p = 0; p < np; ++p) loads.push_back(vc.edges_of(p).size());
  const auto mx = *std::max_element(loads.begin(), loads.end());
  const auto avg = el.num_edges() / static_cast<double>(np);
  EXPECT_LT(static_cast<double>(mx), 2.0 * avg);
}

TEST(VertexCut, InvalidPartitionCountThrows) {
  EXPECT_THROW(VertexCut::build(test::line_graph(4), 0), EpgsError);
  EXPECT_THROW(VertexCut::build(test::line_graph(4), 999), EpgsError);
}

TEST(PowerGraphSystem, PartitionCountOptionRespected) {
  PowerGraphSystem sys(PowerGraphSystem::Options{.num_partitions = 3});
  sys.set_edges(kron_graph());
  sys.build();
  EXPECT_EQ(sys.partitioning().num_partitions(), 3);
}

TEST(PowerGraphSystem, EngineInitLoggedSeparately) {
  PowerGraphSystem sys(PowerGraphSystem::Options{.num_partitions = 4});
  sys.set_edges(test::two_triangles());
  sys.build();
  (void)sys.wcc();
  EXPECT_TRUE(sys.log().find(phase::kEngineInit).has_value())
      << "PowerGraph pays an engine-construction cost per algorithm";
}

TEST(PowerGraphSystem, SsspOnDenseHubGraph) {
  // The dota-like graph is the case the paper highlights for PowerGraph.
  gen::DotaLikeParams p;
  p.fraction = 0.003;
  const auto el = gen::dota_like(p);
  PowerGraphSystem sys;
  sys.set_edges(el);
  sys.build();
  const auto csr = CSRGraph::from_edges(el);
  const auto truth = ref::dijkstra(csr, 0);
  const auto r = sys.sssp(0);
  for (vid_t v = 0; v < truth.size(); ++v) {
    ASSERT_EQ(r.dist[v], truth[v]);
  }
}

TEST(PowerGraphSystem, AsyncEngineMatchesSyncResults) {
  gen::KroneckerParams kp;
  kp.scale = 7;
  kp.edgefactor = 8;
  const auto el =
      with_random_weights(dedupe(symmetrize(gen::kronecker(kp))), 3, 31);

  PowerGraphSystem sync_sys(
      PowerGraphSystem::Options{.num_partitions = 4});
  PowerGraphSystem async_sys(PowerGraphSystem::Options{
      .num_partitions = 4, .async_engine = true});
  sync_sys.set_edges(el);
  sync_sys.build();
  async_sys.set_edges(el);
  async_sys.build();

  const auto roots = harness::select_roots(el, 2, 5);
  for (const vid_t root : roots) {
    EXPECT_EQ(async_sys.sssp(root).dist, sync_sys.sssp(root).dist);
  }
  EXPECT_EQ(async_sys.wcc().component, sync_sys.wcc().component);
}

TEST(PowerGraphSystem, GatherScatterCountersNonZero) {
  PowerGraphSystem sys(PowerGraphSystem::Options{.num_partitions = 2});
  sys.set_edges(test::cycle_graph(10));
  sys.build();
  (void)sys.wcc();
  const auto alg = sys.log().find(phase::kAlgorithm);
  ASSERT_TRUE(alg.has_value());
  EXPECT_GT(alg->work.edges_processed, 0u);
  EXPECT_GT(alg->work.vertex_updates, 0u) << "mirror syncs must be counted";
}

}  // namespace
}  // namespace epgs::systems
