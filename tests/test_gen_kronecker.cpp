#include "gen/kronecker.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/error.hpp"
#include "graph/transforms.hpp"

namespace epgs::gen {
namespace {

TEST(Kronecker, SizesMatchSpec) {
  KroneckerParams p;
  p.scale = 8;
  p.edgefactor = 16;
  const auto el = kronecker(p);
  EXPECT_EQ(el.num_vertices, 256u);
  EXPECT_EQ(el.num_edges(), 256u * 16u);
  for (const auto& e : el.edges) {
    EXPECT_LT(e.src, el.num_vertices);
    EXPECT_LT(e.dst, el.num_vertices);
  }
}

TEST(Kronecker, DeterministicPerSeed) {
  KroneckerParams p;
  p.scale = 7;
  const auto a = kronecker(p);
  const auto b = kronecker(p);
  EXPECT_EQ(a.edges, b.edges);

  p.seed ^= 1;
  const auto c = kronecker(p);
  EXPECT_NE(a.edges, c.edges);
}

TEST(Kronecker, SkewedDegreesVsUniform) {
  // With A=0.57 the degree distribution must be heavily skewed: the max
  // degree far exceeds the average (16).
  KroneckerParams p;
  p.scale = 10;
  const auto el = kronecker(p);
  const auto deg = total_degrees(el);
  const auto max_deg = *std::max_element(deg.begin(), deg.end());
  EXPECT_GT(max_deg, 150u) << "expected heavy-tailed degrees";
}

TEST(Kronecker, UniformInitiatorIsNotSkewed) {
  KroneckerParams p;
  p.scale = 10;
  p.a = p.b = p.c = 0.25;  // Erdos-Renyi-ish corner case
  const auto el = kronecker(p);
  const auto deg = total_degrees(el);
  const auto max_deg = *std::max_element(deg.begin(), deg.end());
  EXPECT_LT(max_deg, 120u);
}

TEST(Kronecker, PermutationOffStillDeterministic) {
  KroneckerParams p;
  p.scale = 6;
  p.permute_vertices = false;
  p.shuffle_edges = false;
  const auto a = kronecker(p);
  const auto b = kronecker(p);
  EXPECT_EQ(a.edges, b.edges);
}

TEST(Kronecker, PermutationChangesLabelsNotCount) {
  KroneckerParams p;
  p.scale = 6;
  p.permute_vertices = false;
  p.shuffle_edges = false;
  const auto plain = kronecker(p);
  p.permute_vertices = true;
  const auto permuted = kronecker(p);
  EXPECT_EQ(plain.num_edges(), permuted.num_edges());
  EXPECT_NE(plain.edges, permuted.edges);
}

TEST(Kronecker, InvalidParamsThrow) {
  KroneckerParams p;
  p.scale = 0;
  EXPECT_THROW(kronecker(p), EpgsError);
  p.scale = 8;
  p.a = 0.8;
  p.b = 0.3;  // a+b+c > 1
  EXPECT_THROW(kronecker(p), EpgsError);
}

class KroneckerScaleSweep : public ::testing::TestWithParam<int> {};

TEST_P(KroneckerScaleSweep, EdgeFactorHolds) {
  KroneckerParams p;
  p.scale = GetParam();
  const auto el = kronecker(p);
  EXPECT_EQ(el.num_edges(),
            static_cast<eid_t>(p.edgefactor) << p.scale);
}

INSTANTIATE_TEST_SUITE_P(Scales, KroneckerScaleSweep,
                         ::testing::Values(4, 6, 8, 10, 12));

}  // namespace
}  // namespace epgs::gen
