// GAP-specific behaviour: direction-optimizing BFS under forced regimes,
// delta-stepping parameterization, dual-CSR construction.
#include "systems/gap/gap_system.hpp"

#include <gtest/gtest.h>

#include "gen/kronecker.hpp"
#include "graph/transforms.hpp"
#include "systems/common/reference.hpp"
#include "systems/common/validation.hpp"
#include "test_util.hpp"

namespace epgs::systems {
namespace {

EdgeList kron_graph() {
  gen::KroneckerParams p;
  p.scale = 9;
  p.edgefactor = 8;
  return dedupe(symmetrize(gen::kronecker(p)));
}

TEST(GapSystem, BuildsBothDirections) {
  GapSystem sys;
  EdgeList el;
  el.num_vertices = 3;
  el.edges = {Edge{0, 1, 1.0f}, Edge{2, 1, 1.0f}};
  sys.set_edges(el);
  sys.build();
  EXPECT_EQ(sys.out_csr().degree(0), 1u);
  EXPECT_EQ(sys.in_csr().degree(1), 2u);
  EXPECT_EQ(sys.out_csr().num_edges(), sys.in_csr().num_edges());
}

class GapBfsRegime : public ::testing::TestWithParam<GapSystem::Options> {};

TEST_P(GapBfsRegime, ValidTreeUnderAnyHeuristic) {
  GapSystem sys(GetParam());
  const auto el = kron_graph();
  sys.set_edges(el);
  sys.build();
  const auto csr = CSRGraph::from_edges(el);
  for (const vid_t root : {vid_t{1}, vid_t{5}, vid_t{100}}) {
    const auto r = sys.bfs(root);
    const auto err = validate_bfs(csr, r);
    EXPECT_FALSE(err.has_value())
        << "alpha=" << GetParam().alpha << " beta=" << GetParam().beta
        << " root=" << root << ": " << err.value_or("");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Heuristics, GapBfsRegime,
    ::testing::Values(
        GapSystem::Options{},                                // defaults
        GapSystem::Options{.alpha = 1e9, .beta = 18.0},      // never bottom-up
        GapSystem::Options{.alpha = 1e-9, .beta = 18.0},     // instant switch
        GapSystem::Options{.alpha = 1e-9, .beta = 1e9},      // stay bottom-up
        GapSystem::Options{.alpha = 15.0, .beta = 2.0}),     // eager return
    [](const auto& info) { return "case" + std::to_string(info.index); });

class GapDeltaSweep : public ::testing::TestWithParam<float> {};

TEST_P(GapDeltaSweep, SsspExactForAnyDelta) {
  GapSystem::Options opts;
  opts.delta = GetParam();
  GapSystem sys(opts);
  const auto el = with_random_weights(kron_graph(), 3, 31);
  sys.set_edges(el);
  sys.build();
  const auto csr = CSRGraph::from_edges(el);
  const auto truth = ref::dijkstra(csr, 1);
  const auto r = sys.sssp(1);
  for (vid_t v = 0; v < truth.size(); ++v) {
    ASSERT_EQ(r.dist[v], truth[v]) << "delta=" << opts.delta;
  }
}

INSTANTIATE_TEST_SUITE_P(Deltas, GapDeltaSweep,
                         ::testing::Values(1.0f, 2.0f, 8.0f, 64.0f, 1e9f),
                         [](const auto& info) {
                           return "delta" + std::to_string(info.index);
                         });

TEST(GapSystem, IntegerWeightModeTruncates) {
  // Section IV-A hazard: with integer weight storage, 0.2 casts to 0 and
  // shortest distances change.
  EdgeList el;
  el.num_vertices = 3;
  el.weighted = true;
  el.edges = {Edge{0, 1, 0.2f}, Edge{1, 2, 0.2f}, Edge{0, 2, 1.0f}};

  GapSystem float_mode;
  float_mode.set_edges(el);
  float_mode.build();
  EXPECT_FLOAT_EQ(float_mode.sssp(0).dist[2], 0.4f);

  GapSystem::Options opts;
  opts.integer_weights = true;
  GapSystem int_mode(opts);
  int_mode.set_edges(el);
  int_mode.build();
  EXPECT_FLOAT_EQ(int_mode.sssp(0).dist[2], 0.0f)
      << "0.2-weight edges truncate to free edges in int mode";
}

TEST(GapSystem, IntegerWeightModeNoOpForIntegralWeights) {
  const auto el = with_random_weights(test::line_graph(12), 4, 31);
  GapSystem::Options opts;
  opts.integer_weights = true;
  GapSystem int_mode(opts);
  int_mode.set_edges(el);
  int_mode.build();
  GapSystem float_mode;
  float_mode.set_edges(el);
  float_mode.build();
  EXPECT_EQ(int_mode.sssp(0).dist, float_mode.sssp(0).dist);
}

TEST(GapSystem, NoCdlpOrLccToolkits) {
  GapSystem sys;
  sys.set_edges(test::line_graph(4));
  sys.build();
  EXPECT_THROW(sys.cdlp(), UnsupportedAlgorithm);
  EXPECT_THROW(sys.lcc(), UnsupportedAlgorithm);
}

TEST(GapSystem, PageRankUsesFewIterationsOnRegularGraph) {
  // On a k-regular graph PageRank is exactly uniform from iteration 1, so
  // GAP's L1 criterion must stop almost immediately — the "GAP requires
  // the fewest iterations" end of Fig 4.
  GapSystem sys;
  sys.set_edges(test::cycle_graph(64));
  sys.build();
  const auto pr = sys.pagerank();
  EXPECT_LE(pr.iterations, 3);
}

TEST(GapSystem, WccOnDisconnectedForest) {
  GapSystem sys;
  sys.set_edges(test::two_triangles());
  sys.build();
  const auto r = sys.wcc();
  EXPECT_EQ(r.component, (std::vector<vid_t>{0, 0, 0, 3, 3, 3, 6}));
  EXPECT_EQ(r.num_components(), 3u);
}

TEST(GapSystem, BfsFromIsolatedRoot) {
  GapSystem sys;
  sys.set_edges(test::two_triangles());
  sys.build();
  const auto r = sys.bfs(6);
  EXPECT_EQ(r.parent[6], 6u);
  for (vid_t v = 0; v < 6; ++v) EXPECT_EQ(r.parent[v], kNoVertex);
}

TEST(GapSystem, SsspUnreachableStaysInfinite) {
  GapSystem sys;
  sys.set_edges(test::two_triangles());
  sys.build();
  const auto r = sys.sssp(0);
  EXPECT_EQ(r.dist[3], kInfDist);
  EXPECT_FLOAT_EQ(r.dist[2], 1.0f);
}

}  // namespace
}  // namespace epgs::systems
