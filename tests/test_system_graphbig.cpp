// GraphBIG-specific behaviour: the property-graph store and the
// visitor-dispatch traversal engine.
#include "systems/graphbig/graphbig_system.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.hpp"

namespace epgs::systems {
namespace {

using graphbig_detail::EdgeObj;
using graphbig_detail::EdgeVisitor;
using graphbig_detail::PropertyGraph;
using graphbig_detail::VertexObj;

TEST(PropertyGraph, LoadBuildsSortedAdjacency) {
  PropertyGraph g;
  EdgeList el;
  el.num_vertices = 3;
  el.edges = {Edge{0, 2, 5.0f}, Edge{0, 1, 3.0f}, Edge{2, 0, 1.0f}};
  el.weighted = true;
  g.load(el);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  ASSERT_EQ(g.vertex(0).out_edges.size(), 2u);
  EXPECT_EQ(g.vertex(0).out_edges[0].target, 1u);
  EXPECT_FLOAT_EQ(g.vertex(0).out_edges[0].weight, 3.0f);
  EXPECT_EQ(g.vertex(0).out_edges[1].target, 2u);
  ASSERT_EQ(g.vertex(0).in_edges.size(), 1u);
  EXPECT_EQ(g.vertex(0).in_edges[0], 2u);
}

TEST(PropertyGraph, EdgeIdsAreUnique) {
  PropertyGraph g;
  g.load(test::two_triangles());
  std::vector<std::uint64_t> ids;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    for (const auto& e : g.vertex(v).out_edges) ids.push_back(e.edge_id);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
  EXPECT_EQ(ids.size(), g.num_edges());
}

TEST(PropertyGraph, ExpandDispatchesEveryFrontierEdge) {
  PropertyGraph g;
  g.load(test::star_graph(6));

  struct CountingVisitor final : EdgeVisitor {
    int calls = 0;
    bool examine(VertexObj&, EdgeObj&, VertexObj&) override {
      ++calls;
      return false;
    }
  } visitor;

  std::uint64_t examined = 0;
  const auto next = g.expand({0}, visitor, examined);
  EXPECT_EQ(visitor.calls, 5);
  EXPECT_EQ(examined, 5u);
  EXPECT_TRUE(next.empty()) << "visitor returned false for every edge";
}

TEST(PropertyGraph, ExpandCollectsAcceptedTargets) {
  PropertyGraph g;
  g.load(test::star_graph(4));

  struct AcceptOdd final : EdgeVisitor {
    bool examine(VertexObj&, EdgeObj& e, VertexObj&) override {
      return e.target % 2 == 1;
    }
  } visitor;

  std::uint64_t examined = 0;
  auto next = g.expand({0}, visitor, examined);
  std::sort(next.begin(), next.end());
  EXPECT_EQ(next, (std::vector<vid_t>{1, 3}));
}

TEST(PropertyGraph, BytesGrowWithGraph) {
  PropertyGraph small, large;
  small.load(test::line_graph(4));
  large.load(test::line_graph(400));
  EXPECT_GT(large.bytes(), small.bytes());
}

TEST(GraphBigSystem, FullCapabilitySurface) {
  GraphBigSystem sys;
  const auto caps = sys.capabilities();
  EXPECT_TRUE(caps.bfs && caps.sssp && caps.pagerank && caps.cdlp &&
              caps.lcc && caps.wcc);
  EXPECT_FALSE(caps.separate_construction);
}

TEST(GraphBigSystem, SsspRevisitsImprovedVertices) {
  // Chaotic relaxation must still converge when a later frontier improves
  // an already-settled vertex: 0->1 (w 10), 0->2 (w 1), 2->1 (w 1).
  EdgeList el;
  el.num_vertices = 3;
  el.weighted = true;
  el.edges = {Edge{0, 1, 10.0f}, Edge{0, 2, 1.0f}, Edge{2, 1, 1.0f}};
  GraphBigSystem sys;
  sys.set_edges(el);
  sys.build();
  const auto r = sys.sssp(0);
  EXPECT_FLOAT_EQ(r.dist[1], 2.0f);
}

TEST(GraphBigSystem, PageRankIsSlowestByDesignNotByWrongness) {
  // The store is object-heavy, but the result must still be a valid
  // distribution.
  GraphBigSystem sys;
  sys.set_edges(test::pagerank_graph());
  sys.build();
  const auto pr = sys.pagerank();
  double sum = 0.0;
  for (const double r : pr.rank) sum += r;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(GraphBigSystem, CdlpIsolatedVertexKeepsLabel) {
  GraphBigSystem sys;
  sys.set_edges(test::two_triangles());
  sys.build();
  const auto r = sys.cdlp(5);
  EXPECT_EQ(r.label[6], 6u);
}

}  // namespace
}  // namespace epgs::systems
