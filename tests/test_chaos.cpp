// Chaos harness: seeded schedule generation is deterministic and obeys
// the recoverability containment rules, the spec text round-trips
// exactly and rejects malformed input, ddmin shrinks to a 1-minimal
// violating subset, and the full executor holds the byte-identity
// invariant on a real (tiny) sweep.
#include "harness/chaos/chaos.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "harness/chaos/schedule.hpp"
#include "harness/chaos/shrink.hpp"

namespace epgs::harness::chaos {
namespace {

namespace fs = std::filesystem;

GeneratorConfig small_targets() {
  GeneratorConfig cfg;
  cfg.systems = {"GAP", "GraphMat"};
  cfg.phases = {"bfs", "pagerank"};
  cfg.validated_phases = {"bfs"};
  cfg.checkpoint_kinds = true;
  cfg.fs_path_substr = "itertrace";
  return cfg;
}

// --- generator -----------------------------------------------------------

TEST(ChaosSchedule, SameSeedSameScheduleDifferentSeedDiffers) {
  const auto cfg = small_targets();
  const auto a = generate_schedule(42, 4, cfg);
  const auto b = generate_schedule(42, 4, cfg);
  EXPECT_EQ(to_spec(a), to_spec(b));

  const auto c = generate_schedule(43, 4, cfg);
  EXPECT_NE(to_spec(a), to_spec(c));
}

TEST(ChaosSchedule, GeneratedEventsObeyContainmentRules) {
  const auto cfg = small_targets();
  const auto sched = generate_schedule(7, 8, cfg);
  ASSERT_FALSE(sched.events.empty());
  for (const ChaosEvent& e : sched.events) {
    EXPECT_GE(e.round, 0);
    EXPECT_LT(e.round, sched.rounds);
    switch (e.kind) {
      case EventKind::kFsFault:
        // The fs shim has no once-marker; recoverability comes from the
        // target's degradation path, never from fire-once semantics.
        EXPECT_FALSE(e.once);
        EXPECT_EQ(e.path_substr, cfg.fs_path_substr);
        break;
      case EventKind::kKillAtCheckpoint:
      case EventKind::kKillAtPublish:
        EXPECT_TRUE(e.once);
        EXPECT_GE(e.at, 1);
        EXPECT_LE(e.at, 3);
        break;
      case EventKind::kWrongOutput:
        // Only per-trial-validated phases can catch a corruption.
        EXPECT_NE(std::find(cfg.validated_phases.begin(),
                            cfg.validated_phases.end(), e.phase),
                  cfg.validated_phases.end())
            << describe(e);
        [[fallthrough]];
      default:
        // Phase kinds: fork children count phase starts from zero, so
        // anything but at=1 would never fire under isolation.
        EXPECT_EQ(e.at, 1) << describe(e);
        EXPECT_TRUE(e.once);
        EXPECT_NE(std::find(cfg.phases.begin(), cfg.phases.end(), e.phase),
                  cfg.phases.end())
            << describe(e);
        break;
    }
  }
}

TEST(ChaosSchedule, WrongOutputExcludedWithoutValidatedPhases) {
  auto cfg = small_targets();
  cfg.validated_phases.clear();
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    for (const ChaosEvent& e : generate_schedule(seed, 6, cfg).events) {
      EXPECT_NE(e.kind, EventKind::kWrongOutput) << "seed " << seed;
    }
  }
}

// --- spec text -----------------------------------------------------------

TEST(ChaosSpec, RoundTripsExactly) {
  const auto sched = generate_schedule(99, 5, small_targets());
  const std::string text = to_spec(sched);
  const auto parsed = parse_spec(text);
  EXPECT_EQ(parsed.seed, sched.seed);
  EXPECT_EQ(parsed.rounds, sched.rounds);
  EXPECT_EQ(to_spec(parsed), text);
}

TEST(ChaosSpec, ParsesHandWrittenEvent) {
  const auto s = parse_spec(
      "epgs-chaos-v1\n"
      "seed 7\n"
      "rounds 2\n"
      "event 1|fs|||3|2|write|28|itertrace|0\n"
      "event 0|segv|GAP|bfs|1|1|write|28||1\n");
  ASSERT_EQ(s.events.size(), 2u);
  EXPECT_EQ(s.events[0].kind, EventKind::kFsFault);
  EXPECT_EQ(s.events[0].at, 3);
  EXPECT_EQ(s.events[0].fires, 2);
  EXPECT_EQ(s.events[0].fs_errno, 28);
  EXPECT_EQ(s.events[0].path_substr, "itertrace");
  EXPECT_FALSE(s.events[0].once);
  EXPECT_EQ(s.events[1].kind, EventKind::kSegv);
  EXPECT_EQ(s.events[1].system, "GAP");
  EXPECT_EQ(s.events[1].phase, "bfs");
  EXPECT_TRUE(s.events[1].once);
}

TEST(ChaosSpec, RejectsMalformedInput) {
  const auto expect_reject = [](const std::string& text) {
    EXPECT_THROW((void)parse_spec(text), EpgsError) << text;
  };
  // A replay spec is user input: every malformed shape must be a typed
  // error, never a silently-misread schedule.
  expect_reject("");                                      // no header
  expect_reject("epgs-chaos-v2\nseed 1\nrounds 1\n");     // wrong header
  expect_reject("epgs-chaos-v1\nrounds 1\n");             // missing seed
  expect_reject("epgs-chaos-v1\nseed 1\n");               // missing rounds
  expect_reject("epgs-chaos-v1\nseed 1\nrounds 0\n");     // rounds < 1
  expect_reject("epgs-chaos-v1\nseed 1x\nrounds 1\n");    // trailing junk
  expect_reject("epgs-chaos-v1\nseed 1\nrounds 1\nwat\n");
  const std::string head = "epgs-chaos-v1\nseed 1\nrounds 1\n";
  expect_reject(head + "event 0|segv|GAP|bfs|1|1|write|28|\n");  // 9 fields
  expect_reject(head + "event 0|segv|GAP|bfs|1|1|write|28||1|x\n");  // 11
  expect_reject(head + "event 0|nuke|GAP|bfs|1|1|write|28||1\n");  // kind
  expect_reject(head + "event 0|segv|GAP|bfs|1x|1|write|28||1\n");  // at
  expect_reject(head + "event 0|segv|GAP|bfs|0|1|write|28||1\n");  // at < 1
  expect_reject(head + "event 0|segv|GAP|bfs|1|0|write|28||1\n");  // fires
  expect_reject(head + "event 0|segv|GAP|bfs|1|1|write|28||2\n");  // once
  expect_reject(head + "event 1|segv|GAP|bfs|1|1|write|28||1\n");  // round
  expect_reject(head + "event -1|segv|GAP|bfs|1|1|write|28||1\n");
  expect_reject(head + "event 0|segv|GAP|bfs|1|1|chmod|28||1\n");  // op
}

// --- ddmin ---------------------------------------------------------------

std::vector<ChaosEvent> synthetic_events(int n) {
  std::vector<ChaosEvent> events;
  for (int i = 0; i < n; ++i) {
    ChaosEvent e;
    e.round = 0;
    e.kind = EventKind::kTransient;
    e.system = "E" + std::to_string(i);  // identity tag for the probes
    events.push_back(e);
  }
  return events;
}

bool contains(const std::vector<ChaosEvent>& events, const char* tag) {
  return std::any_of(events.begin(), events.end(),
                     [&](const ChaosEvent& e) { return e.system == tag; });
}

TEST(ChaosShrink, FindsTheSingleGuiltyEvent) {
  const auto failing = synthetic_events(8);
  const auto res = shrink_events(
      failing, [](const std::vector<ChaosEvent>& s) { return contains(s, "E5"); });
  ASSERT_EQ(res.minimal.size(), 1u);
  EXPECT_EQ(res.minimal[0].system, "E5");
  EXPECT_GT(res.probes, 0);
}

TEST(ChaosShrink, FindsAnInteractingPair) {
  const auto failing = synthetic_events(9);
  const auto res = shrink_events(failing, [](const std::vector<ChaosEvent>& s) {
    return contains(s, "E1") && contains(s, "E7");
  });
  ASSERT_EQ(res.minimal.size(), 2u);
  EXPECT_EQ(res.minimal[0].system, "E1");  // original order preserved
  EXPECT_EQ(res.minimal[1].system, "E7");
}

TEST(ChaosShrink, SingleEventIsAlreadyMinimal) {
  const auto failing = synthetic_events(1);
  const auto res = shrink_events(
      failing, [](const std::vector<ChaosEvent>&) { return true; });
  ASSERT_EQ(res.minimal.size(), 1u);
  EXPECT_EQ(res.probes, 0) << "a 1-event schedule needs no probes";
}

TEST(ChaosShrink, ResultIsOneMinimal) {
  // Violation needs any 3 of the first 4 events: the minimal subset has
  // exactly 3 elements and removing any one of them must pass.
  const auto failing = synthetic_events(6);
  const auto probe = [](const std::vector<ChaosEvent>& s) {
    int hits = 0;
    for (const char* tag : {"E0", "E1", "E2", "E3"}) {
      if (contains(s, tag)) ++hits;
    }
    return hits >= 3;
  };
  const auto res = shrink_events(failing, probe);
  ASSERT_EQ(res.minimal.size(), 3u);
  EXPECT_TRUE(probe(res.minimal));
  for (std::size_t drop = 0; drop < res.minimal.size(); ++drop) {
    auto sub = res.minimal;
    sub.erase(sub.begin() + static_cast<std::ptrdiff_t>(drop));
    EXPECT_FALSE(probe(sub)) << "not 1-minimal: event " << drop
                             << " is removable";
  }
}

// --- executor end to end -------------------------------------------------

class ChaosRun : public ::testing::Test {
 protected:
  void SetUp() override {
    work_ = fs::temp_directory_path() /
            ("epgs_chaos_" + std::to_string(::getpid()));
    fs::remove_all(work_);
    fs::create_directories(work_);
  }
  void TearDown() override { fs::remove_all(work_); }

  /// The smallest real sweep that exercises validation + checkpoints:
  /// one frontier system, BFS (validated per trial), two roots.
  [[nodiscard]] static ExperimentConfig tiny_config() {
    ExperimentConfig cfg;
    cfg.graph.kind = GraphSpec::Kind::kKronecker;
    cfg.graph.scale = 6;
    cfg.graph.edgefactor = 8;
    cfg.systems = {"GAP"};
    cfg.algorithms = {Algorithm::kBfs};
    cfg.num_roots = 2;
    cfg.threads = 1;
    return cfg;
  }

  fs::path work_;
};

TEST_F(ChaosRun, ReplayedScheduleHoldsTheInvariant) {
  ChaosOptions opts;
  opts.work_dir = work_.string();
  opts.max_retries = 2;
  // One round, one transient fault on the only unit family: the retry
  // must absorb it and the stripped CSV must match the control exactly.
  opts.replay_spec =
      "epgs-chaos-v1\n"
      "seed 5\n"
      "rounds 1\n"
      "event 0|transient|GAP|bfs|1|1|write|28||1\n";
  const ChaosReport rep = run_chaos(tiny_config(), opts);
  EXPECT_FALSE(rep.violated);
  ASSERT_EQ(rep.rounds.size(), 1u);
  EXPECT_TRUE(rep.rounds[0].csv_match) << rep.rounds[0].detail;
  EXPECT_TRUE(rep.rounds[0].journal_clean) << rep.rounds[0].detail;
  EXPECT_FALSE(render_chaos_report(rep).empty());
}

TEST_F(ChaosRun, ForcedViolationIsDetectedAndShrinksToOneEvent) {
  ChaosOptions opts;
  opts.work_dir = work_.string();
  opts.max_retries = 1;
  opts.shrink = true;
  opts.force_violation = true;
  // The benign transient plus the forced persistent wrong-output: ddmin
  // must discard the recoverable event and keep the violating one.
  opts.replay_spec =
      "epgs-chaos-v1\n"
      "seed 5\n"
      "rounds 1\n"
      "event 0|transient|GAP|bfs|1|1|write|28||1\n";
  const ChaosReport rep = run_chaos(tiny_config(), opts);
  EXPECT_TRUE(rep.violated);
  ASSERT_LE(rep.minimal.size(), 2u);
  ASSERT_FALSE(rep.minimal.empty());
  EXPECT_EQ(rep.minimal[0].kind, EventKind::kWrongOutput);
  EXPECT_FALSE(rep.minimal[0].once);
  ASSERT_FALSE(rep.minimal_spec_path.empty());
  EXPECT_TRUE(fs::exists(rep.minimal_spec_path));
  // The written reproducer must itself parse — it feeds --replay.
  std::ifstream in(rep.minimal_spec_path);
  std::stringstream ss;
  ss << in.rdbuf();
  const auto replayed = parse_spec(ss.str());
  EXPECT_EQ(replayed.events.size(), rep.minimal.size());
}

}  // namespace
}  // namespace epgs::harness::chaos
