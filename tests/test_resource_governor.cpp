// The resource governor: OOM and disk exhaustion become per-unit
// outcomes (kOomKilled / kResourceExhausted) instead of harness crashes,
// the RSS watchdog cancels over-budget units, isolated children run under
// RLIMIT_AS, and a full disk degrades the cache and the journal without
// losing the sweep.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <new>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/fs_shim.hpp"
#include "harness/analysis.hpp"
#include "harness/dataset_pipeline.hpp"
#include "harness/runner.hpp"
#include "harness/supervisor.hpp"

namespace epgs::harness {
namespace {

namespace fs = std::filesystem;

class GovernorDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("epgs_governor_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    reset_pipeline_stats();
  }
  void TearDown() override {
    fsx::disarm();
    fs::remove_all(dir_);
  }

  fs::path dir_;
};

ExperimentConfig tiny_config() {
  ExperimentConfig cfg;
  cfg.graph.kind = GraphSpec::Kind::kKronecker;
  cfg.graph.scale = 6;
  cfg.graph.edgefactor = 8;
  cfg.systems = {"GAP"};
  cfg.algorithms = {Algorithm::kBfs};
  cfg.num_roots = 3;
  cfg.threads = 1;
  return cfg;
}

int count_outcome(const std::vector<RunRecord>& records, Outcome o) {
  int n = 0;
  for (const auto& r : records) n += (r.outcome == o) ? 1 : 0;
  return n;
}

TEST(Governor, ClassifiesResourceExceptions) {
  EXPECT_EQ(classify_exception(std::bad_alloc()), Outcome::kOomKilled);
  EXPECT_EQ(classify_exception(ResourceExhaustedError("disk full")),
            Outcome::kResourceExhausted);
}

TEST(Governor, OutcomeNamesRoundTrip) {
  EXPECT_EQ(outcome_name(Outcome::kOomKilled), "oom-killed");
  EXPECT_EQ(outcome_name(Outcome::kResourceExhausted), "resource-exhausted");
  EXPECT_EQ(outcome_from_name("oom-killed"), Outcome::kOomKilled);
  EXPECT_EQ(outcome_from_name("resource-exhausted"),
            Outcome::kResourceExhausted);
}

TEST(Governor, BadAllocBecomesOomKilledNotRetried) {
  SupervisorOptions opts;
  opts.max_retries = 5;
  Xoshiro256 rng(1);
  const auto report = supervise_unit(
      [](CancellationToken&) -> std::vector<RunRecord> {
        throw std::bad_alloc();
      },
      opts, rng);
  EXPECT_EQ(report.outcome, Outcome::kOomKilled);
  EXPECT_EQ(report.attempts, 1);  // OOM is not transient: no retry storm
}

TEST(Governor, ResourceExhaustedNotRetried) {
  SupervisorOptions opts;
  opts.max_retries = 5;
  Xoshiro256 rng(1);
  const auto report = supervise_unit(
      [](CancellationToken&) -> std::vector<RunRecord> {
        throw ResourceExhaustedError("write failed for x: ENOSPC");
      },
      opts, rng);
  EXPECT_EQ(report.outcome, Outcome::kResourceExhausted);
  EXPECT_EQ(report.attempts, 1);
  EXPECT_NE(report.message.find("ENOSPC"), std::string::npos);
}

TEST(Governor, RssWatchdogCancelsOverBudgetUnit) {
  SupervisorOptions opts;
  opts.mem_limit_bytes = 1 << 20;  // 1 MiB: this process is far beyond it
  Xoshiro256 rng(1);
  const auto report = supervise_unit(
      [](CancellationToken& token) -> std::vector<RunRecord> {
        for (;;) token.checkpoint();  // cooperative loop, cancelled by RSS
      },
      opts, rng);
  EXPECT_EQ(report.outcome, Outcome::kOomKilled);
  EXPECT_NE(report.message.find("memory limit"), std::string::npos);
}

TEST(Governor, IsolatedChildUnderRlimitAsReportsOomKilled) {
#if defined(__SANITIZE_ADDRESS__)
  GTEST_SKIP() << "RLIMIT_AS breaks ASan's shadow-memory reservation; the "
                  "unsanitized tier-1 job covers this path";
#endif
  SupervisorOptions opts;
  opts.isolate = true;
  opts.mem_limit_bytes = 256ull << 20;  // RLIMIT_AS in the forked child
  Xoshiro256 rng(1);
  const auto report = supervise_unit(
      [](CancellationToken&) -> std::vector<RunRecord> {
        // Far past any plausible gap between current VA and the cap:
        // the allocation must fail inside the child, not kill the parent.
        std::vector<char> hog(4ull << 30);
        return {RunRecord{}};
      },
      opts, rng);
  EXPECT_EQ(report.outcome, Outcome::kOomKilled);
}

TEST_F(GovernorDir, JournalRoundTripsGovernorOutcomes) {
  const std::string path = (dir_ / "journal.txt").string();
  {
    Journal j;
    j.open_fresh(path, "fp");
    TrialReport oom;
    oom.outcome = Outcome::kOomKilled;
    j.append("GAP|BFS|0", oom);
    TrialReport disk;
    disk.outcome = Outcome::kResourceExhausted;
    j.append("GAP|BFS|1", disk);
    j.close();
  }
  const auto entries = replay_journal(path, "fp");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].outcome, Outcome::kOomKilled);
  EXPECT_EQ(entries[1].outcome, Outcome::kResourceExhausted);
}

TEST_F(GovernorDir, JournalDegradesOnDiskFullSweepContinues) {
  auto cfg = tiny_config();
  cfg.supervisor.journal_path = (dir_ / "journal.txt").string();

  fsx::Plan plan;
  plan.op = fsx::Op::kWrite;
  plan.error_code = ENOSPC;
  plan.path_substr = "journal.txt";
  plan.at_call = 2;  // header lands; the first unit group hits the wall
  fsx::Scoped armed(plan);

  const auto result = run_experiment(cfg);
  EXPECT_FALSE(result.journal_warning.empty());
  EXPECT_NE(result.journal_warning.find("journal.txt"), std::string::npos);
  // Every trial still ran and succeeded: journaling died, the sweep not.
  EXPECT_EQ(count_outcome(result.records, Outcome::kSuccess),
            static_cast<int>(result.records.size()));
  EXPECT_GT(result.records.size(), 0u);
}

TEST_F(GovernorDir, CacheEnospcDegradesToUncachedRun) {
  auto cfg = tiny_config();
  cfg.dataset.cache_dir = (dir_ / "cache").string();

  fsx::Plan plan;
  plan.op = fsx::Op::kWrite;
  plan.error_code = ENOSPC;
  plan.path_substr = "cache";
  fsx::Scoped armed(plan);

  const auto result = run_experiment(cfg);
  EXPECT_TRUE(result.dataset_degraded);
  EXPECT_FALSE(result.used_dataset_pipeline);
  EXPECT_TRUE(result.dataset_warning.find("ENOSPC") != std::string::npos ||
              result.dataset_warning.find("No space") != std::string::npos)
      << result.dataset_warning;
  EXPECT_EQ(count_outcome(result.records, Outcome::kSuccess),
            static_cast<int>(result.records.size()));
  EXPECT_GT(result.records.size(), 0u);
  EXPECT_EQ(pipeline_stats().degraded_runs, 1u);
  // The failed build left no staging litter behind.
  for (const auto& e : fs::directory_iterator(dir_ / "cache")) {
    EXPECT_EQ(e.path().filename().string().rfind(".tmp-", 0),
              std::string::npos)
        << "leaked staging dir " << e.path();
  }
}

TEST_F(GovernorDir, DiskPreflightRefusesImpossibleFloor) {
  DatasetOptions opts;
  opts.cache_dir = (dir_ / "cache").string();
  opts.min_free_disk_bytes = ~0ull;  // no volume has 16 EiB free
  GraphSpec spec;
  spec.kind = GraphSpec::Kind::kKronecker;
  spec.scale = 6;
  spec.edgefactor = 8;

  const auto prep = prepare_dataset(spec, opts);
  EXPECT_TRUE(prep.degraded);
  EXPECT_NE(prep.degradation.find("--min-free-disk"), std::string::npos);
  EXPECT_GT(prep.edges.num_edges(), 0u);  // the RAM fallback still ran
}

TEST_F(GovernorDir, OutcomeTableRendersGovernorColumns) {
  std::vector<RunRecord> records(3);
  records[0].system = "GAP";
  records[0].outcome = Outcome::kSuccess;
  records[1].system = "GAP";
  records[1].outcome = Outcome::kOomKilled;
  records[2].system = "GAP";
  records[2].outcome = Outcome::kResourceExhausted;
  const auto summary = outcome_summary(records);
  const std::string table = render_outcome_table(summary);
  EXPECT_NE(table.find("oom-killed"), std::string::npos);
  EXPECT_NE(table.find("resource-exhausted"), std::string::npos);
  int failures = 0;
  for (const auto& row : summary) failures += row.failures();
  EXPECT_EQ(failures, 2);  // both governor outcomes count as DNFs
}

}  // namespace
}  // namespace epgs::harness
