#include "graphalytics/comparator.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "graph/homogenizer.hpp"
#include "harness/runner.hpp"
#include "systems/common/registry.hpp"

namespace epgs::graphalytics {
namespace {

namespace fs = std::filesystem;
using harness::Algorithm;

Options small_options(const fs::path& dir) {
  Options opts;
  opts.algorithms = {Algorithm::kBfs, Algorithm::kPageRank,
                     Algorithm::kSssp, Algorithm::kWcc};
  opts.threads = 2;
  opts.work_dir = dir;
  return opts;
}

harness::GraphSpec small_kron(bool weighted) {
  harness::GraphSpec spec;
  spec.kind = harness::GraphSpec::Kind::kKronecker;
  spec.scale = 7;
  spec.edgefactor = 8;
  spec.add_weights = weighted;
  return spec;
}

TEST(Graphalytics, ReportHasCellsForAllSystems) {
  const auto dir = fs::temp_directory_path() / "epgs_galy_cells";
  const auto report = run(small_kron(true), small_options(dir));
  EXPECT_EQ(report.cells.size(), 3u);
  for (const auto& [system, row] : report.cells) {
    EXPECT_EQ(row.size(), 4u) << system;
  }
  // PowerGraph has no BFS; GraphMat/GraphBIG do.
  EXPECT_FALSE(report.cells.at("PowerGraph").at("BFS").available);
  EXPECT_TRUE(report.cells.at("GraphMat").at("BFS").available);
  EXPECT_TRUE(report.cells.at("GraphBIG").at("BFS").available);
  fs::remove_all(dir);
}

TEST(Graphalytics, SsspNaOnUnweightedDatasets) {
  // Table I: the cit-Patents SSSP column is N/A because the dataset is
  // unweighted.
  const auto dir = fs::temp_directory_path() / "epgs_galy_na";
  const auto report = run(small_kron(false), small_options(dir));
  for (const auto& [system, row] : report.cells) {
    EXPECT_FALSE(row.at("SSSP").available) << system;
  }
  fs::remove_all(dir);
}

TEST(Graphalytics, GraphMatChargedForFileReadButGraphBigIsNot) {
  // The paper's core methodological finding, reproduced deterministically
  // against the systems' own phase logs: GraphMat's reported number
  // includes its file read and graph build; GraphBIG's excludes its
  // (fused) read+build entirely.
  const auto dir = fs::temp_directory_path() / "epgs_galy_flaw";
  const auto spec = small_kron(true);
  const auto el = harness::materialize(spec);
  const auto files = homogenize(el, "flaw", dir);

  auto gm = make_system("GraphMat");
  gm->load_file(files.path(gm->native_format()));
  gm->build();
  (void)gm->pagerank();
  const double gm_cell = reported_seconds(*gm);
  const double gm_io = gm->log().total(phase::kFileRead) +
                       gm->log().total(phase::kBuild);
  const double gm_alg = gm->log().total(phase::kAlgorithm);
  EXPECT_GT(gm_io, 0.0);
  EXPECT_DOUBLE_EQ(gm_cell, gm_io + gm_alg)
      << "GraphMat's cell must include I/O + build";

  auto gb = make_system("GraphBIG");
  gb->load_file(files.path(gb->native_format()));
  gb->build();
  (void)gb->pagerank();
  const double gb_cell = reported_seconds(*gb);
  EXPECT_GT(gb->log().total(phase::kBuild), 0.0);
  EXPECT_DOUBLE_EQ(gb_cell, gb->log().total(phase::kAlgorithm))
      << "GraphBIG's cell must exclude the fused read+build";
  fs::remove_all(dir);
}

TEST(Graphalytics, GraphMatLogExcerptPresent) {
  const auto dir = fs::temp_directory_path() / "epgs_galy_log";
  auto opts = small_options(dir);
  opts.algorithms = {Algorithm::kPageRank};
  const auto report = run(small_kron(true), opts);
  ASSERT_FALSE(report.graphmat_log_excerpt.empty());
  bool has_file_read = false, has_load = false;
  for (const auto& line : report.graphmat_log_excerpt) {
    has_file_read |= line.find("file read") != std::string::npos;
    has_load |= line.find("load graph") != std::string::npos;
  }
  EXPECT_TRUE(has_file_read);
  EXPECT_TRUE(has_load);
  fs::remove_all(dir);
}

TEST(Graphalytics, RenderersProduceOutput) {
  const auto dir = fs::temp_directory_path() / "epgs_galy_render";
  auto opts = small_options(dir);
  opts.algorithms = {Algorithm::kWcc};
  const auto report = run(small_kron(false), opts);

  const auto table = render_table(report);
  EXPECT_NE(table.find("GraphMat"), std::string::npos);
  EXPECT_NE(table.find("WCC"), std::string::npos);

  const auto html = render_html(report);
  EXPECT_EQ(html.rfind("<!DOCTYPE html>", 0), 0u);
  EXPECT_NE(html.find("<table"), std::string::npos);
  EXPECT_NE(html.find("GraphBIG"), std::string::npos);
  fs::remove_all(dir);
}

TEST(Graphalytics, EmptyConfigRejected) {
  Options opts;
  opts.algorithms = {};
  EXPECT_THROW(run(small_kron(false), opts), EpgsError);
  opts.algorithms = {Algorithm::kBfs};
  opts.systems = {};
  EXPECT_THROW(run(small_kron(false), opts), EpgsError);
}

}  // namespace
}  // namespace epgs::graphalytics
