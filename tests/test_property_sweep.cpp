// Property sweeps: randomized graph configurations, checked against the
// oracles. These catch the interactions single fixed graphs miss —
// generator seed x skew x weight range x root position.
#include <gtest/gtest.h>

#include "gen/kronecker.hpp"
#include "graph/csr.hpp"
#include "graph/transforms.hpp"
#include "harness/experiment.hpp"
#include "systems/common/reference.hpp"
#include "systems/common/registry.hpp"
#include "systems/common/validation.hpp"

namespace epgs {
namespace {

struct SweepConfig {
  std::uint64_t seed;
  int scale;
  int edgefactor;
  double a;  // Kronecker skew
  std::uint32_t max_weight;
};

class RandomGraphSweep : public ::testing::TestWithParam<SweepConfig> {
 protected:
  void SetUp() override {
    const auto& cfg = GetParam();
    gen::KroneckerParams p;
    p.scale = cfg.scale;
    p.edgefactor = cfg.edgefactor;
    p.seed = cfg.seed;
    p.a = cfg.a;
    p.b = p.c = (1.0 - cfg.a) / 3.0;
    graph_ = with_random_weights(dedupe(symmetrize(gen::kronecker(p))),
                                 cfg.seed ^ 0xABCDULL, cfg.max_weight);
    csr_ = CSRGraph::from_edges(graph_);
    roots_ = harness::select_roots(graph_, 3, cfg.seed);
  }

  EdgeList graph_;
  CSRGraph csr_;
  std::vector<vid_t> roots_;
};

TEST_P(RandomGraphSweep, AllBfsSystemsValidate) {
  for (const auto name : all_system_names()) {
    auto sys = make_system(name);
    if (!sys->capabilities().bfs) continue;
    sys->set_edges(graph_);
    sys->build();
    for (const vid_t root : roots_) {
      const auto err = validate_bfs(csr_, sys->bfs(root));
      ASSERT_FALSE(err.has_value())
          << name << " seed=" << GetParam().seed << " root=" << root
          << ": " << err.value_or("");
    }
  }
}

TEST_P(RandomGraphSweep, AllSsspSystemsExact) {
  for (const auto name : all_system_names()) {
    auto sys = make_system(name);
    if (!sys->capabilities().sssp) continue;
    sys->set_edges(graph_);
    sys->build();
    const auto truth = ref::dijkstra(csr_, roots_[0]);
    const auto result = sys->sssp(roots_[0]);
    for (vid_t v = 0; v < truth.size(); ++v) {
      ASSERT_EQ(result.dist[v], truth[v])
          << name << " seed=" << GetParam().seed << " vertex=" << v;
    }
  }
}

TEST_P(RandomGraphSweep, WccAgreesEverywhere) {
  const auto truth = ref::wcc(graph_);
  for (const auto name : all_system_names()) {
    auto sys = make_system(name);
    if (!sys->capabilities().wcc) continue;
    sys->set_edges(graph_);
    sys->build();
    ASSERT_EQ(sys->wcc().component, truth.component)
        << name << " seed=" << GetParam().seed;
  }
}

TEST_P(RandomGraphSweep, PageRankDistributionsAgree) {
  PageRankParams params;
  const auto in = CSRGraph::from_edges(graph_, true);
  const auto truth = ref::pagerank(csr_, in, params);
  for (const auto name : all_system_names()) {
    auto sys = make_system(name);
    if (!sys->capabilities().pagerank) continue;
    sys->set_edges(graph_);
    sys->build();
    const auto result = sys->pagerank(params);
    const double rel_tol =
        sys->name() == "GraphMat" ? 1e-3 : 1e-6;  // float ranks
    const double uniform = 1.0 / static_cast<double>(truth.rank.size());
    for (std::size_t v = 0; v < truth.rank.size(); ++v) {
      ASSERT_NEAR(result.rank[v], truth.rank[v],
                  rel_tol * (uniform + truth.rank[v]))
          << name << " seed=" << GetParam().seed << " vertex=" << v;
    }
  }
}

TEST_P(RandomGraphSweep, TriangleCountsAgree) {
  const auto in = CSRGraph::from_edges(graph_, true);
  const auto truth = ref::triangle_count(csr_, in);
  for (const auto name : all_system_names()) {
    auto sys = make_system(name);
    if (!sys->capabilities().tc) continue;
    sys->set_edges(graph_);
    sys->build();
    ASSERT_EQ(sys->tc().triangles, truth.triangles)
        << name << " seed=" << GetParam().seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, RandomGraphSweep,
    ::testing::Values(SweepConfig{1, 7, 4, 0.57, 255},
                      SweepConfig{2, 8, 8, 0.57, 3},
                      SweepConfig{3, 7, 16, 0.45, 15},
                      SweepConfig{4, 8, 2, 0.70, 255},
                      SweepConfig{5, 6, 12, 0.25, 1},
                      SweepConfig{6, 9, 6, 0.60, 63}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace epgs
