#include "harness/experiment.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>

#include "core/error.hpp"
#include "graph/snap_io.hpp"
#include "graph/transforms.hpp"
#include "test_util.hpp"

namespace epgs::harness {
namespace {

TEST(AlgorithmNames, RoundTrip) {
  for (const auto a : {Algorithm::kBfs, Algorithm::kSssp,
                       Algorithm::kPageRank, Algorithm::kCdlp,
                       Algorithm::kLcc, Algorithm::kWcc}) {
    EXPECT_EQ(algorithm_from_name(algorithm_name(a)), a);
  }
  EXPECT_EQ(algorithm_from_name("PR"), Algorithm::kPageRank);
  EXPECT_THROW(algorithm_from_name("TriangleCount"), EpgsError);
}

TEST(GraphSpec, NamesIdentifyWorkloads) {
  GraphSpec kron;
  kron.kind = GraphSpec::Kind::kKronecker;
  kron.scale = 22;
  EXPECT_EQ(kron.name(), "kron-s22");

  GraphSpec snap;
  snap.kind = GraphSpec::Kind::kSnapFile;
  snap.path = "/data/sets/cit-Patents.snap";
  EXPECT_EQ(snap.name(), "cit-Patents.snap");

  GraphSpec dota;
  dota.kind = GraphSpec::Kind::kDotaLike;
  EXPECT_NE(dota.name().find("dota"), std::string::npos);
}

TEST(Materialize, KroneckerSymmetrizedDeduplicated) {
  GraphSpec spec;
  spec.kind = GraphSpec::Kind::kKronecker;
  spec.scale = 7;
  spec.edgefactor = 8;
  const auto el = materialize(spec);
  // Symmetric: every edge has its reverse.
  std::set<std::pair<vid_t, vid_t>> edges;
  for (const auto& e : el.edges) edges.emplace(e.src, e.dst);
  for (const auto& [u, v] : edges) {
    EXPECT_TRUE(edges.count({v, u})) << u << "->" << v;
    EXPECT_NE(u, v) << "self loops must be removed";
  }
  // Deduplicated.
  EXPECT_EQ(edges.size(), el.edges.size());
}

TEST(Materialize, WeightsOnRequest) {
  GraphSpec spec;
  spec.kind = GraphSpec::Kind::kKronecker;
  spec.scale = 6;
  spec.add_weights = true;
  spec.max_weight = 7;
  const auto el = materialize(spec);
  ASSERT_TRUE(el.weighted);
  for (const auto& e : el.edges) {
    EXPECT_GE(e.w, 1.0f);
    EXPECT_LE(e.w, 7.0f);
  }
}

TEST(Materialize, SnapFilePassThrough) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto path = dir / "epgs_mat.snap";
  write_snap_file(path, test::two_triangles());
  GraphSpec spec;
  spec.kind = GraphSpec::Kind::kSnapFile;
  spec.path = path.string();
  spec.symmetrize = false;
  spec.deduplicate = false;
  const auto el = materialize(spec);
  EXPECT_EQ(el.num_vertices, 7u);
  EXPECT_EQ(el.num_edges(), 12u);
  std::filesystem::remove(path);
}

TEST(Materialize, DotaLikeAlreadyWeighted) {
  GraphSpec spec;
  spec.kind = GraphSpec::Kind::kDotaLike;
  spec.fraction = 0.005;
  spec.add_weights = true;  // must not overwrite the co-play counts
  const auto el = materialize(spec);
  ASSERT_TRUE(el.weighted);
  bool any_gt_one = false;
  for (const auto& e : el.edges) any_gt_one |= e.w > 1.0f;
  EXPECT_TRUE(any_gt_one);
}

TEST(SelectRoots, DistinctHighDegreeDeterministic) {
  const auto el = test::star_graph(64);
  const auto roots = select_roots(el, 8, 42);
  EXPECT_EQ(roots.size(), 8u);
  std::set<vid_t> uniq(roots.begin(), roots.end());
  EXPECT_EQ(uniq.size(), 8u);
  EXPECT_EQ(roots, select_roots(el, 8, 42));
  EXPECT_NE(roots, select_roots(el, 8, 43));
}

TEST(SelectRoots, RespectsDegreeFloor) {
  // Degree > 1 rule: in a star, leaves have degree 2 (symmetric pairs),
  // so everything qualifies; in a graph with pendant vertices, those with
  // degree <= 1 are avoided while better vertices exist.
  EdgeList el;
  el.num_vertices = 10;
  // 0-1-2 chain (degrees 2, 4, 2 as directed pairs) + pendant edge 3->4.
  el.edges = {Edge{0, 1, 1.0f}, Edge{1, 0, 1.0f}, Edge{1, 2, 1.0f},
              Edge{2, 1, 1.0f}, Edge{3, 4, 1.0f}};
  const auto roots = select_roots(el, 3, 1);
  for (const auto r : roots) {
    EXPECT_LE(r, 2u) << "vertices 3,4 (deg<=1) and 5..9 (deg 0) excluded";
  }
}

TEST(SelectRoots, FallsBackWhenTooFewCandidates) {
  const auto el = test::line_graph(3);  // only vertex 1 has degree > 1
  const auto roots = select_roots(el, 4, 7);
  EXPECT_EQ(roots.size(), 4u);  // repeats allowed once candidates exhaust
  for (const auto r : roots) EXPECT_LT(r, 3u);
}

TEST(SelectRoots, ThrowsOnEdgelessGraph) {
  EdgeList el;
  el.num_vertices = 5;
  EXPECT_THROW(select_roots(el, 2, 1), EpgsError);
}

}  // namespace
}  // namespace epgs::harness
