#include "graphalytics/granula.hpp"

#include <gtest/gtest.h>

#include "systems/common/registry.hpp"
#include "test_util.hpp"

namespace epgs::graphalytics {
namespace {

PhaseLog sample_log() {
  PhaseLog log;
  log.add(std::string(phase::kFileRead), 2.0,
          WorkStats{.edges_processed = 100});
  log.add(std::string(phase::kBuild), 3.0,
          WorkStats{.edges_processed = 100, .bytes_touched = 4096});
  log.add(std::string(phase::kEngineInit), 0.5);
  log.add(std::string(phase::kAlgorithm), 1.5,
          WorkStats{.edges_processed = 300, .vertex_updates = 40});
  log.add(std::string(phase::kAlgorithm), 2.5,
          WorkStats{.edges_processed = 500, .vertex_updates = 60});
  return log;
}

TEST(Granula, EvaluatesHierarchy) {
  const auto report = evaluate(default_operation_model(), sample_log());
  EXPECT_EQ(report.label, "Job");
  EXPECT_DOUBLE_EQ(report.seconds, 2.0 + 3.0 + 0.5 + 1.5 + 2.5);
  EXPECT_DOUBLE_EQ(report.self_seconds, 0.0);  // pure container
  ASSERT_EQ(report.children.size(), 4u);

  const auto& ingest = report.children[0];
  EXPECT_EQ(ingest.label, "Ingest");
  EXPECT_DOUBLE_EQ(ingest.seconds, 2.0);
  EXPECT_EQ(ingest.occurrences, 1);

  const auto& setup = report.children[1];
  EXPECT_EQ(setup.label, "Setup");
  EXPECT_DOUBLE_EQ(setup.seconds, 3.5);
  ASSERT_EQ(setup.children.size(), 2u);
  EXPECT_DOUBLE_EQ(setup.children[0].seconds, 3.0);
  EXPECT_DOUBLE_EQ(setup.children[1].seconds, 0.5);

  const auto& processing = report.children[2];
  EXPECT_EQ(processing.occurrences, 2);
  EXPECT_DOUBLE_EQ(processing.seconds, 4.0);
  EXPECT_EQ(processing.work.edges_processed, 800u);
  EXPECT_EQ(processing.work.vertex_updates, 100u);
  EXPECT_DOUBLE_EQ(processing.edges_per_second, 200.0);
}

TEST(Granula, WorkAggregatesUpward) {
  const auto report = evaluate(default_operation_model(), sample_log());
  EXPECT_EQ(report.work.edges_processed, 100u + 100u + 800u);
  EXPECT_EQ(report.work.bytes_touched, 4096u);
}

TEST(Granula, EmptyLogYieldsZeroReport) {
  const auto report = evaluate(default_operation_model(), PhaseLog{});
  EXPECT_DOUBLE_EQ(report.seconds, 0.0);
  for (const auto& child : report.children) {
    EXPECT_EQ(child.occurrences, 0);
  }
}

TEST(Granula, CustomModel) {
  OperationSpec spec{.label = "OnlyAlgorithms",
                     .phase_name = std::string(phase::kAlgorithm),
                     .children = {}};
  const auto report = evaluate(spec, sample_log());
  EXPECT_EQ(report.occurrences, 2);
  EXPECT_DOUBLE_EQ(report.seconds, 4.0);
}

TEST(Granula, RenderShowsTreeAndThroughput) {
  const auto text =
      render_report(evaluate(default_operation_model(), sample_log()));
  EXPECT_NE(text.find("Job"), std::string::npos);
  EXPECT_NE(text.find("  Ingest"), std::string::npos);
  EXPECT_NE(text.find("    BuildGraph"), std::string::npos);
  EXPECT_NE(text.find("edges/s"), std::string::npos);
}

TEST(Granula, WorksOnRealSystemLog) {
  auto sys = make_system("PowerGraph");
  sys->set_edges(test::two_triangles());
  sys->build();
  (void)sys->wcc();
  const auto report = evaluate(default_operation_model(), sys->log());
  // PowerGraph: fused build + engine init + algorithm all present.
  EXPECT_GT(report.seconds, 0.0);
  EXPECT_GT(report.children[1].children[1].occurrences, 0)
      << "EngineInit must be visible in the operation tree";
  EXPECT_GT(report.children[2].occurrences, 0);
}

}  // namespace
}  // namespace epgs::graphalytics
