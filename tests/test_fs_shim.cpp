// The filesystem shim: typed errno surfacing, deterministic fault
// injection (ENOSPC at the Nth write, EIO on read, short writes, failed
// rename/fsync, mmap failure), and the OutStream writer every durable
// file in the harness goes through.
#include "core/fs_shim.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/error.hpp"
#include "core/mapped_file.hpp"

namespace epgs {
namespace {

namespace fs = std::filesystem;

class FsShimDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("epgs_fsshim_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    fsx::disarm();
    fs::remove_all(dir_);
  }

  [[nodiscard]] fs::path file(const std::string& name) const {
    return dir_ / name;
  }

  static std::string slurp(const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  fs::path dir_;
};

TEST_F(FsShimDir, OutStreamWritesFormattedAndRawBytes) {
  const auto p = file("plain.txt");
  {
    fsx::OutStream out(p);
    out << "hello " << 42 << '\n';
    std::string big(200 * 1024, 'x');  // larger than the 64 KiB buffer
    out.write(big.data(), static_cast<std::streamsize>(big.size()));
    out.close();
  }
  const std::string got = slurp(p);
  EXPECT_EQ(got.substr(0, 9), "hello 42\n");
  EXPECT_EQ(got.size(), 9 + 200 * 1024);
  EXPECT_EQ(got.back(), 'x');
}

TEST_F(FsShimDir, OutStreamAppendMode) {
  const auto p = file("append.txt");
  {
    fsx::OutStream out(p);
    out << "first\n";
    out.close();
  }
  {
    fsx::OutStream out(p, fsx::OutStream::Mode::kAppend);
    out << "second\n";
    out.close();
  }
  EXPECT_EQ(slurp(p), "first\nsecond\n");
}

TEST_F(FsShimDir, EnospcAtNthWriteThrowsTyped) {
  fsx::Plan plan;
  plan.op = fsx::Op::kWrite;
  plan.error_code = ENOSPC;
  plan.at_call = 2;  // first flush succeeds, second hits the wall
  fsx::Scoped armed(plan);

  const auto p = file("enospc.bin");
  fsx::OutStream out(p);
  std::string chunk(64 * 1024, 'a');  // one full buffer = one write call
  EXPECT_NO_THROW(
      out.write(chunk.data(), static_cast<std::streamsize>(chunk.size())));
  // The exception must be the typed resource error, surfaced at the
  // stream operation that hit it — not a silent badbit.
  EXPECT_THROW(
      {
        out.write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
        out.close();
      },
      ResourceExhaustedError);
  EXPECT_GE(fsx::fire_count(), 1);
}

TEST_F(FsShimDir, ShortWritesAreRetriedToCompletion) {
  fsx::Plan plan;
  plan.op = fsx::Op::kWrite;
  plan.short_write = true;
  plan.max_fires = 3;  // first few writes land torn, the loop must finish
  fsx::Scoped armed(plan);

  const auto p = file("short.bin");
  std::string payload;
  for (int i = 0; i < 100000; ++i) payload += std::to_string(i);
  {
    fsx::OutStream out(p);
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    out.close();
  }
  EXPECT_EQ(fsx::fire_count(), 3);
  EXPECT_EQ(slurp(p), payload);  // no silent truncation
}

TEST_F(FsShimDir, PathFilterScopesFaultsToMatchingFiles) {
  fsx::Plan plan;
  plan.op = fsx::Op::kWrite;
  plan.error_code = ENOSPC;
  plan.path_substr = "victim";
  fsx::Scoped armed(plan);

  {
    fsx::OutStream ok(file("healthy.txt"));
    ok << "fine";
    ok.close();  // does not match: must not fire
  }
  fsx::OutStream bad(file("victim.txt"));
  EXPECT_THROW(
      {
        bad << "doomed";
        bad.close();
      },
      ResourceExhaustedError);
  EXPECT_EQ(slurp(file("healthy.txt")), "fine");
}

TEST_F(FsShimDir, RenameAndFsyncInjection) {
  {
    fsx::Plan plan;
    plan.op = fsx::Op::kRename;
    plan.error_code = ENOSPC;
    fsx::Scoped armed(plan);
    std::ofstream(file("a.txt")) << "x";
    EXPECT_THROW(fsx::rename(file("a.txt"), file("b.txt")),
                 ResourceExhaustedError);
    EXPECT_TRUE(fs::exists(file("a.txt")));  // injected before the syscall
  }
  {
    fsx::Plan plan;
    plan.op = fsx::Op::kFsync;
    plan.error_code = EIO;
    fsx::Scoped armed(plan);
    fsx::OutStream out(file("c.txt"));
    out << "y";
    EXPECT_THROW(out.sync_now(), IoError);
  }
}

TEST_F(FsShimDir, OpenInjectionAndRealRenameWork) {
  {
    fsx::Plan plan;
    plan.op = fsx::Op::kOpen;
    plan.error_code = EMFILE;  // fd exhaustion is a resource fault
    fsx::Scoped armed(plan);
    EXPECT_THROW(fsx::OutStream(file("nope.txt")), ResourceExhaustedError);
  }
  std::ofstream(file("from.txt")) << "z";
  fsx::rename(file("from.txt"), file("to.txt"));
  EXPECT_EQ(slurp(file("to.txt")), "z");
  fsx::fsync_path(file("to.txt"));
  fsx::fsync_dir(dir_);
  EXPECT_GT(fsx::free_disk_bytes(dir_), 0u);
}

TEST_F(FsShimDir, MmapFaultFallsBackToIdenticalBufferedRead) {
  const auto p = file("mapped.bin");
  std::string payload(100 * 1024, '\0');
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>(i * 131);
  }
  std::ofstream(p, std::ios::binary).write(
      payload.data(), static_cast<std::streamsize>(payload.size()));

  std::string mapped_view;
  {
    const MappedFile m(p);
    EXPECT_TRUE(m.is_mapped());
    mapped_view = std::string(m.view());
  }
  {
    fsx::Plan plan;
    plan.op = fsx::Op::kMmap;
    plan.error_code = ENOMEM;
    fsx::Scoped armed(plan);
    const MappedFile m(p);
    EXPECT_FALSE(m.is_mapped());  // degraded, not failed
    EXPECT_EQ(m.view(), mapped_view);
  }
}

TEST_F(FsShimDir, ReadEioIsTypedNotMistakenForEof) {
  const auto p = file("sick.bin");
  std::ofstream(p, std::ios::binary) << std::string(4096, 'd');

  fsx::Plan plan;
  plan.op = fsx::Op::kRead;
  plan.error_code = EIO;
  fsx::Scoped armed(plan);
  // Force the buffered path so reads actually go through read(2).
  MappedFile::force_buffered(true);
  try {
    const MappedFile m(p);
    FAIL() << "EIO on read must surface as IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("sick.bin"), std::string::npos);
  } catch (const ResourceExhaustedError&) {
    FAIL() << "EIO is a sick disk, not an exhausted resource";
  }
  MappedFile::force_buffered(false);
}

TEST_F(FsShimDir, SpecParserRoundTrip) {
  fsx::arm_from_spec("write:ENOSPC:at=3:count=2:path=cache");
  EXPECT_TRUE(fsx::armed());
  fsx::disarm();
  EXPECT_FALSE(fsx::armed());

  fsx::arm_from_spec("write:short");
  EXPECT_TRUE(fsx::armed());
  fsx::disarm();

  fsx::arm_from_spec("read:EIO:at=1:count=1");
  EXPECT_TRUE(fsx::armed());
  fsx::disarm();

  EXPECT_THROW(fsx::arm_from_spec("write"), EpgsError);
  EXPECT_THROW(fsx::arm_from_spec("chmod:ENOSPC"), EpgsError);
  EXPECT_THROW(fsx::arm_from_spec("write:EWHAT"), EpgsError);
  EXPECT_THROW(fsx::arm_from_spec("write:ENOSPC:at=0"), EpgsError);
  EXPECT_THROW(fsx::arm_from_spec("write:ENOSPC:bogus=1"), EpgsError);
  EXPECT_FALSE(fsx::armed());
}

TEST_F(FsShimDir, SpecParserRejectsEveryMalformedShape) {
  // $EPGS_FS_FAULT is operator input: each malformed shape must be its
  // own typed rejection, never a silently-misarmed plan.
  const auto expect_reject = [](const char* spec) {
    EXPECT_THROW(fsx::arm_from_spec(spec), EpgsError) << spec;
    EXPECT_FALSE(fsx::armed()) << spec << " left a plan armed";
  };
  expect_reject("write::ENOSPC");          // doubled ':' = empty field
  expect_reject("write:ENOSPC:");          // trailing ':' = empty field
  expect_reject(":ENOSPC");                // empty op
  expect_reject("launder:ENOSPC");         // unknown op
  expect_reject("write:28");               // errno must be named, not raw
  expect_reject("write:enospc");           // names are case-sensitive
  expect_reject("write:ENOSPC:at=12abc");  // trailing junk in integer
  expect_reject("write:ENOSPC:at=");       // empty integer
  expect_reject("write:ENOSPC:count=");    // empty integer
  expect_reject("write:ENOSPC:count=0");   // count must be >= 1
  expect_reject("write:ENOSPC:count=-2");
  expect_reject("write:ENOSPC:path=");     // path= needs a substring
  expect_reject("write:ENOSPC:at");        // field without '='
}

}  // namespace
}  // namespace epgs
