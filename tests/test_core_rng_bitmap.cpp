#include <gtest/gtest.h>

#include <omp.h>

#include <set>

#include "core/bitmap.hpp"
#include "core/parallel.hpp"
#include "core/rng.hpp"
#include "core/types.hpp"

namespace epgs {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Xoshiro256 a(42), b(42), c(43);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformU64RespectsBound) {
  Xoshiro256 rng(1);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_u64(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
  EXPECT_EQ(rng.uniform_u64(0), 0u);
  EXPECT_EQ(rng.uniform_u64(1), 0u);
}

TEST(Rng, UniformInInclusive) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_in(10, 12);
    ASSERT_GE(v, 10u);
    ASSERT_LE(v, 12u);
  }
}

TEST(Bitmap, SetTestCount) {
  Bitmap bm(130);
  EXPECT_EQ(bm.size(), 130u);
  EXPECT_EQ(bm.count(), 0u);
  bm.set(0);
  bm.set(63);
  bm.set(64);
  bm.set(129);
  EXPECT_TRUE(bm.test(0));
  EXPECT_TRUE(bm.test(63));
  EXPECT_TRUE(bm.test(64));
  EXPECT_TRUE(bm.test(129));
  EXPECT_FALSE(bm.test(1));
  EXPECT_EQ(bm.count(), 4u);
  bm.reset();
  EXPECT_EQ(bm.count(), 0u);
}

TEST(Bitmap, AtomicSetReportsFirstSetter) {
  Bitmap bm(64);
  EXPECT_TRUE(bm.set_atomic(5));
  EXPECT_FALSE(bm.set_atomic(5));
  EXPECT_TRUE(bm.test(5));
}

TEST(Bitmap, ConcurrentSettersEachBitSetOnce) {
  constexpr std::size_t kBits = 10000;
  Bitmap bm(kBits);
  std::atomic<std::size_t> winners{0};
#pragma omp parallel for
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(kBits * 4); ++i) {
    if (bm.set_atomic(static_cast<std::size_t>(i) % kBits)) {
      winners.fetch_add(1, std::memory_order_relaxed);
    }
  }
  EXPECT_EQ(winners.load(), kBits);
  EXPECT_EQ(bm.count(), kBits);
}

TEST(Bitmap, Swap) {
  Bitmap a(10), b(10);
  a.set(3);
  a.swap(b);
  EXPECT_FALSE(a.test(3));
  EXPECT_TRUE(b.test(3));
}

TEST(Parallel, AtomicFetchMin) {
  std::atomic<float> v{10.0f};
  EXPECT_TRUE(atomic_fetch_min(&v, 5.0f));
  EXPECT_FLOAT_EQ(v.load(), 5.0f);
  EXPECT_FALSE(atomic_fetch_min(&v, 7.0f));
  EXPECT_FLOAT_EQ(v.load(), 5.0f);
  EXPECT_FALSE(atomic_fetch_min(&v, 5.0f));  // equal is not an improvement
}

TEST(Parallel, ExclusivePrefixSum) {
  std::vector<std::uint64_t> in = {3, 0, 2, 5};
  std::vector<std::uint64_t> out;
  EXPECT_EQ(exclusive_prefix_sum(in, out), 10u);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{0, 3, 3, 5, 10}));
  in.clear();
  EXPECT_EQ(exclusive_prefix_sum(in, out), 0u);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{0}));
}

TEST(Parallel, ThreadScopeRestores) {
  const int before = omp_get_max_threads();
  {
    ThreadScope scope(1);
    EXPECT_EQ(omp_get_max_threads(), 1);
  }
  EXPECT_EQ(omp_get_max_threads(), before);
}

TEST(Types, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KiB");
  EXPECT_EQ(format_bytes(3 * 1024 * 1024), "3.00 MiB");
}

TEST(Types, GraphScale) {
  GraphScale gs{.scale = 10, .edgefactor = 16};
  EXPECT_EQ(gs.num_vertices(), 1024u);
  EXPECT_EQ(gs.num_edges(), 16384u);
}

}  // namespace
}  // namespace epgs
