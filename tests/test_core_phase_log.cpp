#include "core/phase_log.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace epgs {
namespace {

PhaseLog sample_log() {
  PhaseLog log;
  log.set_attr("system", "GraphMat");
  log.set_attr("dataset", "dota-league");
  log.add("file read", 2.65211,
          WorkStats{.edges_processed = 50870313, .bytes_touched = 1 << 20});
  log.add("build graph", 5.91229);
  log.add("run algorithm", 0.149445, WorkStats{.vertex_updates = 61670},
          {{"alg", "pagerank"}, {"iterations", "31"}});
  return log;
}

TEST(PhaseLog, TotalsAndFind) {
  const auto log = sample_log();
  EXPECT_DOUBLE_EQ(log.total("file read"), 2.65211);
  EXPECT_DOUBLE_EQ(log.total("missing"), 0.0);
  EXPECT_NEAR(log.total_all(), 2.65211 + 5.91229 + 0.149445, 1e-12);
  ASSERT_TRUE(log.find("run algorithm").has_value());
  EXPECT_EQ(log.find("run algorithm")->extra.at("iterations"), "31");
  EXPECT_FALSE(log.find("missing").has_value());
}

TEST(PhaseLog, RepeatedPhaseSums) {
  PhaseLog log;
  log.add("run algorithm", 1.0);
  log.add("run algorithm", 2.5);
  EXPECT_DOUBLE_EQ(log.total("run algorithm"), 3.5);
  EXPECT_EQ(log.entries().size(), 2u);
}

TEST(PhaseLog, TotalWorkAggregates) {
  const auto log = sample_log();
  const auto w = log.total_work();
  EXPECT_EQ(w.edges_processed, 50870313u);
  EXPECT_EQ(w.vertex_updates, 61670u);
  EXPECT_EQ(w.bytes_touched, static_cast<std::uint64_t>(1 << 20));
}

TEST(PhaseLog, TextRoundTrip) {
  const auto log = sample_log();
  const auto text = log.to_log_text();
  const auto parsed = PhaseLog::parse_log_text(text);

  ASSERT_EQ(parsed.entries().size(), log.entries().size());
  for (std::size_t i = 0; i < log.entries().size(); ++i) {
    const auto& a = log.entries()[i];
    const auto& b = parsed.entries()[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_NEAR(a.seconds, b.seconds, 1e-9 * (1.0 + a.seconds));
    EXPECT_EQ(a.work.edges_processed, b.work.edges_processed);
    EXPECT_EQ(a.work.vertex_updates, b.work.vertex_updates);
    EXPECT_EQ(a.work.bytes_touched, b.work.bytes_touched);
    EXPECT_EQ(a.extra, b.extra);
  }
  EXPECT_EQ(parsed.attrs(), log.attrs());
}

TEST(PhaseLog, PhaseNameMayContainColons) {
  PhaseLog log;
  log.add("run algorithm: part 2", 0.5);
  const auto parsed = PhaseLog::parse_log_text(log.to_log_text());
  ASSERT_EQ(parsed.entries().size(), 1u);
  EXPECT_EQ(parsed.entries()[0].name, "run algorithm: part 2");
}

TEST(PhaseLog, EmptyLogRoundTrips) {
  const auto parsed = PhaseLog::parse_log_text(PhaseLog{}.to_log_text());
  EXPECT_TRUE(parsed.entries().empty());
  EXPECT_TRUE(parsed.attrs().empty());
}

TEST(PhaseLog, ParseSkipsBlankLines) {
  const auto parsed =
      PhaseLog::parse_log_text("\n\n* build graph: 1.5 sec\n\n");
  ASSERT_EQ(parsed.entries().size(), 1u);
  EXPECT_DOUBLE_EQ(parsed.entries()[0].seconds, 1.5);
}

TEST(PhaseLog, ParseRejectsMalformedLines) {
  EXPECT_THROW(PhaseLog::parse_log_text("garbage line"),
               std::runtime_error);
  EXPECT_THROW(PhaseLog::parse_log_text("* missing duration\n"),
               std::runtime_error);
  EXPECT_THROW(PhaseLog::parse_log_text("* phase: 1.0 minutes\n"),
               std::runtime_error);
  EXPECT_THROW(PhaseLog::parse_log_text("* phase: 1.0 sec badtoken\n"),
               std::runtime_error);
  EXPECT_THROW(PhaseLog::parse_log_text("* phase: 1.0 sec edges=abc\n"),
               std::runtime_error);
  EXPECT_THROW(PhaseLog::parse_log_text("# attr without equals\n"),
               std::runtime_error);
}

TEST(PhaseLog, ClearResets) {
  auto log = sample_log();
  log.clear();
  EXPECT_TRUE(log.entries().empty());
  EXPECT_TRUE(log.attrs().empty());
  EXPECT_DOUBLE_EQ(log.total_all(), 0.0);
}

}  // namespace
}  // namespace epgs
