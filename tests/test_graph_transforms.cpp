#include "graph/transforms.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.hpp"

namespace epgs {
namespace {

TEST(Transforms, SymmetrizeDoublesEdges) {
  EdgeList el;
  el.num_vertices = 3;
  el.directed = true;
  el.edges = {Edge{0, 1, 5.0f}, Edge{1, 2, 7.0f}};
  const auto sym = symmetrize(el);
  EXPECT_EQ(sym.num_edges(), 4u);
  EXPECT_FALSE(sym.directed);
  // Reverse edges carry the same weight.
  EXPECT_NE(std::find(sym.edges.begin(), sym.edges.end(), Edge{1, 0, 5.0f}),
            sym.edges.end());
  EXPECT_NE(std::find(sym.edges.begin(), sym.edges.end(), Edge{2, 1, 7.0f}),
            sym.edges.end());
}

TEST(Transforms, SymmetrizeDoesNotDuplicateSelfLoops) {
  EdgeList el;
  el.num_vertices = 2;
  el.edges = {Edge{0, 0, 1.0f}, Edge{0, 1, 1.0f}};
  const auto sym = symmetrize(el);
  EXPECT_EQ(sym.num_edges(), 3u);  // loop once + both directions of (0,1)
}

TEST(Transforms, DedupeRemovesDuplicatesAndLoops) {
  EdgeList el;
  el.num_vertices = 3;
  el.edges = {Edge{0, 1, 3.0f}, Edge{0, 1, 2.0f}, Edge{1, 1, 1.0f},
              Edge{2, 0, 4.0f}};
  const auto d = dedupe(el);
  EXPECT_EQ(d.num_edges(), 2u);
  // Keeps the minimum weight among duplicates.
  EXPECT_EQ(d.edges[0], (Edge{0, 1, 2.0f}));
  EXPECT_EQ(d.edges[1], (Edge{2, 0, 4.0f}));
}

TEST(Transforms, DedupeMayKeepSelfLoops) {
  EdgeList el;
  el.num_vertices = 2;
  el.edges = {Edge{1, 1, 1.0f}, Edge{1, 1, 1.0f}};
  const auto d = dedupe(el, /*drop_self_loops=*/false);
  EXPECT_EQ(d.num_edges(), 1u);
  EXPECT_EQ(d.edges[0].src, d.edges[0].dst);
}

TEST(Transforms, RandomWeightsDeterministicAndInRange) {
  const auto base = test::line_graph(50);
  const auto w1 = with_random_weights(base, 123, 10);
  const auto w2 = with_random_weights(base, 123, 10);
  const auto w3 = with_random_weights(base, 124, 10);
  ASSERT_TRUE(w1.weighted);
  EXPECT_EQ(w1.edges, w2.edges);
  EXPECT_NE(w1.edges, w3.edges);
  for (const auto& e : w1.edges) {
    EXPECT_GE(e.w, 1.0f);
    EXPECT_LE(e.w, 10.0f);
    EXPECT_EQ(e.w, static_cast<float>(static_cast<int>(e.w)))
        << "weights must be integer-valued for cross-system exactness";
  }
}

TEST(Transforms, UnweightedViewClearsWeights) {
  const auto w = with_random_weights(test::line_graph(4), 1, 9);
  const auto u = unweighted_view(w);
  EXPECT_FALSE(u.weighted);
  for (const auto& e : u.edges) EXPECT_FLOAT_EQ(e.w, 1.0f);
}

TEST(Transforms, Degrees) {
  EdgeList el;
  el.num_vertices = 3;
  el.edges = {Edge{0, 1, 1.0f}, Edge{0, 2, 1.0f}, Edge{1, 2, 1.0f}};
  EXPECT_EQ(out_degrees(el), (std::vector<eid_t>{2, 1, 0}));
  EXPECT_EQ(in_degrees(el), (std::vector<eid_t>{0, 1, 2}));
  EXPECT_EQ(total_degrees(el), (std::vector<eid_t>{2, 2, 2}));
}

TEST(Transforms, CountVerticesWithDegreeAbove) {
  const auto star = test::star_graph(5);  // center degree 8, leaves 2
  EXPECT_EQ(count_vertices_with_degree_above(star, 1), 5u);
  EXPECT_EQ(count_vertices_with_degree_above(star, 2), 1u);
  EXPECT_EQ(count_vertices_with_degree_above(star, 100), 0u);
}

}  // namespace
}  // namespace epgs
